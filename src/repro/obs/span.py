"""Trace spans: context-manager timing records with parent links.

A span is one timed region of one process ("lane"), with a name, a unique
id, a parent id (0 = root), free-form attributes, and nanosecond wall-clock
timestamps from ``time.perf_counter_ns``.  Serving additionally records
*sim-clock* spans — regions priced by the discrete-event simulator rather
than measured — which carry ``sim_start`` / ``sim_end`` seconds instead of
(meaningful) wall timestamps; exporters place them on separate ``sim:``
lanes.

Cross-process traces: ``perf_counter_ns`` origins differ between processes,
so each side captures a :func:`clock_anchor` — a ``(perf_ns, wall_ns)``
pair read back-to-back — and :func:`rebase_ns` maps a remote perf timestamp
into the local perf domain through the shared wall clock.  On one host the
wall clocks are literally the same clock, so alignment error is bounded by
the few microseconds between the two anchor reads.

This module is the only place outside the perf harness allowed to call
``time.perf_counter_ns`` (enforced by the ruff ``TID251`` banned-API rule):
all other timing flows through spans.
"""

from __future__ import annotations

import itertools
import secrets
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "SpanRecord",
    "Tracer",
    "NULL_SPAN",
    "clock_anchor",
    "rebase_ns",
    "spans_to_wire",
    "spans_from_wire",
]

#: Process-wide span-id source.  ``itertools.count`` is atomic under the
#: GIL; ids only need to be unique within one process (cross-process
#: uniqueness comes from the lane recorded on every span).
_next_span_id = itertools.count(1).__next__


def new_trace_id() -> str:
    """A fresh 64-bit hex trace id."""
    return secrets.token_hex(8)


def clock_anchor() -> tuple:
    """``(perf_counter_ns, time_ns)`` read back-to-back.

    The pair ties this process's monotonic clock to the shared wall clock
    so another process can rebase our timestamps (:func:`rebase_ns`).
    """
    return (time.perf_counter_ns(), time.time_ns())


def rebase_ns(t_ns: int, remote_anchor: tuple, local_anchor: tuple) -> int:
    """Map a remote ``perf_counter_ns`` timestamp into the local domain.

    The remote event's wall time is ``r_wall + (t - r_perf)``; the local
    perf timestamp for that wall instant is ``l_perf + (wall - l_wall)``.
    """
    r_perf, r_wall = remote_anchor
    l_perf, l_wall = local_anchor
    return int(t_ns) - int(r_perf) + int(r_wall) - int(l_wall) + int(l_perf)


@dataclass
class SpanRecord:
    """One finished span.  ``end_ns >= start_ns`` always holds for wall
    spans; sim-clock spans leave both at 0 and fill ``sim_start/sim_end``."""

    name: str
    span_id: int
    parent_id: int
    trace_id: str
    lane: str
    start_ns: int
    end_ns: int
    attrs: Dict[str, Any] = field(default_factory=dict)
    sim_start: Optional[float] = None
    sim_end: Optional[float] = None

    @property
    def duration_s(self) -> float:
        if self.sim_start is not None and self.sim_end is not None:
            return float(self.sim_end - self.sim_start)
        return (self.end_ns - self.start_ns) / 1e9


class _NullSpan:
    """The no-op span handed out while tracing is disabled.

    A single shared instance: entering, exiting, and attribute updates all
    do nothing, so disabled call sites cost one truthiness check plus a
    method call on this object.
    """

    __slots__ = ()
    span_id = 0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _LiveSpan:
    """A recording span; created by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "attrs",
                 "start_ns", "end_ns", "_hist")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any],
                 hist: Optional[str]) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = _next_span_id()
        self.parent_id = 0
        self.attrs = attrs
        self.start_ns = 0
        self.end_ns = 0
        self._hist = hist

    def set(self, **attrs) -> "_LiveSpan":
        """Attach attributes after the span has started."""
        self.attrs.update(attrs)
        return self

    def __bool__(self) -> bool:
        return True

    def __enter__(self) -> "_LiveSpan":
        tracer = self._tracer
        self.parent_id = tracer.current_span_id
        tracer._stack.append(self.span_id)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        self.end_ns = time.perf_counter_ns()
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] == self.span_id:
            tracer._stack.pop()
        tracer.spans.append(SpanRecord(
            name=self.name, span_id=self.span_id, parent_id=self.parent_id,
            trace_id=tracer.trace_id, lane=tracer.lane,
            start_ns=self.start_ns, end_ns=self.end_ns, attrs=self.attrs,
        ))
        if self._hist is not None and tracer.metrics is not None:
            tracer.metrics.histogram(self._hist).observe(
                (self.end_ns - self.start_ns) / 1e9)
        return False


class Tracer:
    """Collects :class:`SpanRecord`\\ s for one process lane.

    Not thread-safe by design: every instrumented layer in this repo runs
    its hot path on one thread per process, and the multiproc backend gives
    each worker process its own tracer.
    """

    def __init__(self, lane: str = "coordinator",
                 trace_id: Optional[str] = None) -> None:
        self.lane = lane
        self.trace_id = trace_id or new_trace_id()
        self.enabled = False
        self.spans: List[SpanRecord] = []
        self._stack: List[int] = []
        #: Set by :class:`~repro.obs.ObsRuntime` so ``span(..., hist=...)``
        #: can observe durations without a circular import.
        self.metrics = None

    # -- configuration --------------------------------------------------
    def configure(self, lane: Optional[str] = None,
                  trace_id: Optional[str] = None) -> None:
        if lane is not None:
            self.lane = lane
        if trace_id is not None:
            self.trace_id = trace_id

    def reset(self) -> None:
        self.spans = []
        self._stack = []

    # -- recording ------------------------------------------------------
    @property
    def current_span_id(self) -> int:
        """Innermost open span id (0 at the root)."""
        return self._stack[-1] if self._stack else 0

    def span(self, name: str, parent_id: Optional[int] = None,
             hist: Optional[str] = None, **attrs):
        """A context-manager span; the null no-op while disabled.

        ``parent_id`` overrides the implicit parent (the innermost open
        span) — used to hang a worker's epoch span off the coordinator
        span id carried in the ``run`` token.  ``hist`` names a histogram
        to observe the span's duration (seconds) into on exit.
        """
        if not self.enabled:
            return NULL_SPAN
        out = _LiveSpan(self, name, attrs, hist)
        if parent_id is not None:
            # The explicit parent wins over the stack; __enter__ would
            # overwrite it, so wrap the assignment.
            return _ExplicitParent(out, parent_id)
        return out

    def add_span(self, name: str, start_ns: int, end_ns: int,
                 parent_id: int = 0, lane: Optional[str] = None,
                 sim_start: Optional[float] = None,
                 sim_end: Optional[float] = None, **attrs) -> SpanRecord:
        """Record an already-timed span (no context manager)."""
        rec = SpanRecord(
            name=name, span_id=_next_span_id(), parent_id=parent_id,
            trace_id=self.trace_id, lane=lane or self.lane,
            start_ns=int(start_ns), end_ns=int(end_ns), attrs=attrs,
            sim_start=sim_start, sim_end=sim_end,
        )
        self.spans.append(rec)
        return rec

    def add_sim_span(self, name: str, sim_start: float, sim_end: float,
                     parent_id: int = 0, lane: Optional[str] = None,
                     **attrs) -> SpanRecord:
        """Record a simulator-priced span (sim-clock seconds)."""
        return self.add_span(name, 0, 0, parent_id=parent_id, lane=lane,
                             sim_start=float(sim_start),
                             sim_end=float(sim_end), **attrs)

    def drain(self) -> List[SpanRecord]:
        """Return recorded spans and clear the buffer."""
        out, self.spans = self.spans, []
        return out

    def merge_remote(self, spans: Iterable[SpanRecord],
                     remote_anchor: tuple, local_anchor: tuple) -> int:
        """Rebase remote wall spans into this tracer's clock and keep them.

        Sim-clock spans pass through untouched (the sim clock is already
        global).  Returns the number of spans merged.
        """
        n = 0
        for rec in spans:
            if rec.sim_start is None:
                rec.start_ns = rebase_ns(rec.start_ns, remote_anchor,
                                         local_anchor)
                rec.end_ns = rebase_ns(rec.end_ns, remote_anchor,
                                       local_anchor)
            rec.trace_id = self.trace_id
            self.spans.append(rec)
            n += 1
        return n


class _ExplicitParent:
    """Wraps a :class:`_LiveSpan` to pin its parent id on entry."""

    __slots__ = ("_span", "_parent_id")

    def __init__(self, span: _LiveSpan, parent_id: int) -> None:
        self._span = span
        self._parent_id = parent_id

    def __enter__(self) -> _LiveSpan:
        span = self._span.__enter__()
        span.parent_id = self._parent_id
        return span

    def __exit__(self, *exc) -> bool:
        return self._span.__exit__(*exc)


# ----------------------------------------------------------------------
# wire codec (plain dicts; the multiproc wire format packs them directly)
# ----------------------------------------------------------------------

_WIRE_SCALARS = (str, int, float, bool, type(None))


def _wire_attr(value: Any) -> Any:
    """Clamp an attribute to wire-safe scalars (repr anything exotic)."""
    if isinstance(value, _WIRE_SCALARS):
        return value
    return repr(value)


def spans_to_wire(spans: Iterable[SpanRecord]) -> List[dict]:
    """Encode spans as plain dicts for the multiproc wire format."""
    out = []
    for rec in spans:
        out.append({
            "name": rec.name,
            "span_id": rec.span_id,
            "parent_id": rec.parent_id,
            "trace_id": rec.trace_id,
            "lane": rec.lane,
            "start_ns": rec.start_ns,
            "end_ns": rec.end_ns,
            "attrs": {k: _wire_attr(v) for k, v in rec.attrs.items()},
            "sim_start": rec.sim_start,
            "sim_end": rec.sim_end,
        })
    return out


def spans_from_wire(raw: Iterable[dict]) -> List[SpanRecord]:
    """Decode :func:`spans_to_wire` output back into records."""
    return [SpanRecord(
        name=d["name"], span_id=int(d["span_id"]),
        parent_id=int(d["parent_id"]), trace_id=d["trace_id"],
        lane=d["lane"], start_ns=int(d["start_ns"]), end_ns=int(d["end_ns"]),
        attrs=dict(d.get("attrs") or {}),
        sim_start=d.get("sim_start"), sim_end=d.get("sim_end"),
    ) for d in raw]
