"""Exporters: Chrome ``trace_event`` JSON, Prometheus text, JSONL.

Chrome traces load directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.  Every lane (coordinator, each worker process, each
simulated serving machine) becomes its own ``pid`` with a ``process_name``
metadata record, so the UI renders one horizontal track per lane.  Wall
spans are emitted as complete (``"ph": "X"``) events with microsecond
timestamps rebased to the earliest span in the trace; sim-clock spans use
the simulator's global clock directly (seconds → µs) on ``sim:``-prefixed
lanes.

:func:`validate_chrome_trace` is the schema check CI runs against exported
traces: structural requirements of the ``trace_event`` format (required
keys, types, non-negative durations, metadata shape), not Chrome's full
spec.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import SpanRecord

__all__ = [
    "chrome_trace",
    "save_chrome_trace",
    "validate_chrome_trace",
    "lane_intervals",
    "prometheus_text",
    "write_jsonl",
]


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------

def _lane_order(spans: List[SpanRecord]) -> List[str]:
    """Stable lane ordering: coordinator first, then first-seen order."""
    lanes: List[str] = []
    for rec in spans:
        lane = rec.lane if rec.sim_start is None else f"sim:{rec.lane}"
        if lane not in lanes:
            lanes.append(lane)
    lanes.sort(key=lambda lane: (lane != "coordinator",
                                 lane.startswith("sim:"), lane))
    return lanes


def chrome_trace(spans: Iterable[SpanRecord],
                 registry: Optional[MetricsRegistry] = None) -> dict:
    """Build a Chrome ``trace_event`` document from finished spans.

    Metric snapshots (if a registry is given) ride along under
    ``otherData`` so one file carries the whole run.
    """
    spans = list(spans)
    lanes = _lane_order(spans)
    pid_of = {lane: i + 1 for i, lane in enumerate(lanes)}
    wall_starts = [r.start_ns for r in spans if r.sim_start is None]
    t0 = min(wall_starts) if wall_starts else 0

    events: List[dict] = []
    for lane in lanes:
        events.append({
            "ph": "M", "name": "process_name", "pid": pid_of[lane], "tid": 0,
            "args": {"name": lane},
        })
        events.append({
            "ph": "M", "name": "process_sort_index", "pid": pid_of[lane],
            "tid": 0, "args": {"sort_index": pid_of[lane]},
        })
    for rec in spans:
        if rec.sim_start is None:
            lane = rec.lane
            ts_us = (rec.start_ns - t0) / 1e3
            dur_us = (rec.end_ns - rec.start_ns) / 1e3
        else:
            lane = f"sim:{rec.lane}"
            ts_us = rec.sim_start * 1e6
            dur_us = (rec.sim_end - rec.sim_start) * 1e6
        args = dict(rec.attrs)
        args["span_id"] = rec.span_id
        if rec.parent_id:
            args["parent_id"] = rec.parent_id
        events.append({
            "ph": "X", "name": rec.name, "cat": rec.name.split(".", 1)[0],
            "pid": pid_of[lane], "tid": 0,
            "ts": ts_us, "dur": max(dur_us, 0.0), "args": args,
        })

    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": spans[0].trace_id if spans else None},
    }
    if registry is not None:
        doc["otherData"]["metrics"] = registry.snapshot()
    return doc


def save_chrome_trace(path: str, spans: Iterable[SpanRecord],
                      registry: Optional[MetricsRegistry] = None) -> dict:
    """Write :func:`chrome_trace` output to ``path``; returns the doc."""
    doc = chrome_trace(spans, registry)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return doc


_REQUIRED_X_KEYS = ("name", "ph", "pid", "tid", "ts", "dur")


def validate_chrome_trace(doc: Any) -> List[str]:
    """Structural ``trace_event`` schema check; returns problems (empty =
    valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    named_pids = set()
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") not in ("process_name", "thread_name",
                                      "process_sort_index",
                                      "thread_sort_index"):
                problems.append(f"{where}: unknown metadata {ev.get('name')!r}")
            if not isinstance(ev.get("args"), dict):
                problems.append(f"{where}: metadata event without args")
            elif ev.get("name") == "process_name":
                if not isinstance(ev["args"].get("name"), str):
                    problems.append(f"{where}: process_name without a name")
                named_pids.add(ev.get("pid"))
        elif ph == "X":
            for key in _REQUIRED_X_KEYS:
                if key not in ev:
                    problems.append(f"{where}: missing {key!r}")
            if not isinstance(ev.get("name"), str) or not ev.get("name"):
                problems.append(f"{where}: name must be a non-empty string")
            for key in ("ts", "dur"):
                val = ev.get(key)
                if not isinstance(val, (int, float)) or isinstance(val, bool):
                    problems.append(f"{where}: {key} must be numeric")
                elif key == "dur" and val < 0:
                    problems.append(f"{where}: negative duration")
            for key in ("pid", "tid"):
                if not isinstance(ev.get(key), int):
                    problems.append(f"{where}: {key} must be an int")
        else:
            problems.append(f"{where}: unsupported phase {ph!r}")
    x_pids = {ev.get("pid") for ev in events
              if isinstance(ev, dict) and ev.get("ph") == "X"}
    unnamed = x_pids - named_pids
    if unnamed:
        problems.append(f"pids without process_name metadata: {sorted(unnamed)}")
    return problems


def lane_intervals(doc: dict) -> Dict[str, List[tuple]]:
    """Per-lane ``(ts, ts+dur)`` µs intervals from a Chrome trace doc.

    Used by the smoke/acceptance checks to measure how much of the epoch
    wall each lane's spans cover.
    """
    names = {ev["pid"]: ev["args"]["name"] for ev in doc["traceEvents"]
             if ev.get("ph") == "M" and ev.get("name") == "process_name"}
    out: Dict[str, List[tuple]] = {}
    for ev in doc["traceEvents"]:
        if ev.get("ph") != "X":
            continue
        lane = names.get(ev["pid"], str(ev["pid"]))
        out.setdefault(lane, []).append((ev["ts"], ev["ts"] + ev["dur"]))
    return out


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _prom_name(name: str) -> str:
    safe = "".join(ch if (ch.isalnum() or ch == "_") else "_"
                   for ch in name)
    return f"repro_{safe}"


def _prom_value(v: float) -> str:
    if v != v:  # NaN
        return "NaN"
    if v in (float("inf"), float("-inf")):
        return "+Inf" if v > 0 else "-Inf"
    return repr(float(v)) if isinstance(v, float) else str(v)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every instrument in the Prometheus text exposition format."""
    lines: List[str] = []
    for inst in registry.instruments():
        base = _prom_name(inst.name)
        if inst.kind == "counter":
            name = f"{base}_total"
            if inst.help:
                lines.append(f"# HELP {name} {inst.help}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {inst.value}")
        elif inst.kind == "gauge":
            if inst.help:
                lines.append(f"# HELP {base} {inst.help}")
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base} {_prom_value(inst.value)}")
        elif inst.kind == "histogram":
            if inst.help:
                lines.append(f"# HELP {base} {inst.help}")
            lines.append(f"# TYPE {base} histogram")
            for edge, cum in inst.cumulative_buckets():
                lines.append(f'{base}_bucket{{le="{edge:.6g}"}} {cum}')
            lines.append(f'{base}_bucket{{le="+Inf"}} {inst.count}')
            lines.append(f"{base}_sum {_prom_value(inst.sum)}")
            lines.append(f"{base}_count {inst.count}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# append-only JSONL stream
# ----------------------------------------------------------------------

def write_jsonl(path: str, spans: Iterable[SpanRecord] = (),
                registry: Optional[MetricsRegistry] = None,
                meta: Optional[dict] = None) -> int:
    """Append spans (and a metrics snapshot) to a JSONL stream.

    One JSON object per line, discriminated by ``"kind"`` (``span`` /
    ``metric`` / ``meta``), so downstream consumers can tail the file.
    Returns the number of lines written.
    """
    n = 0
    with open(path, "a") as fh:
        if meta is not None:
            fh.write(json.dumps({"kind": "meta", **meta},
                                sort_keys=True) + "\n")
            n += 1
        for rec in spans:
            fh.write(json.dumps({
                "kind": "span", "name": rec.name, "span_id": rec.span_id,
                "parent_id": rec.parent_id, "trace_id": rec.trace_id,
                "lane": rec.lane, "start_ns": rec.start_ns,
                "end_ns": rec.end_ns, "sim_start": rec.sim_start,
                "sim_end": rec.sim_end, "attrs": rec.attrs,
            }, sort_keys=True, default=repr) + "\n")
            n += 1
        if registry is not None:
            for name, snap in registry.snapshot().items():
                # The instrument's own kind (counter/gauge/histogram)
                # nests under "data" so the line discriminator stays
                # "metric".
                fh.write(json.dumps({"kind": "metric", "data": snap},
                                    sort_keys=True) + "\n")
                n += 1
    return n
