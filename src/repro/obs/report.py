"""Human-readable run summaries from exported telemetry.

Usage::

    PYTHONPATH=src python -m repro.obs.report run_trace.json
    PYTHONPATH=src python -m repro.obs.report run_telemetry.jsonl

Accepts either a Chrome ``trace_event`` document (as written by
:func:`repro.obs.exporters.save_chrome_trace`) or an append-only JSONL
stream (:func:`repro.obs.exporters.write_jsonl`).  Prints, per lane, the
span count, the covered wall time, and coverage of the overall trace
window; then the slowest spans; then every metric with counts, sums and
the p50/p95/p99 of each histogram.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple

from repro.obs.metrics import Histogram

__all__ = ["load_events", "union_length", "render_report", "main"]


def load_events(path: str) -> Tuple[List[dict], Dict[str, dict]]:
    """Read a trace file; returns ``(span_rows, metric_snapshots)``.

    Span rows are normalized to
    ``{"name", "lane", "start_us", "dur_us"}``; metric snapshots keep the
    instrument ``to_dict`` shape.
    """
    spans: List[dict] = []
    metrics: Dict[str, dict] = {}
    if path.endswith(".jsonl"):
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                row = json.loads(line)
                if row.get("kind") == "span":
                    sim = row.get("sim_start") is not None
                    start = (row["sim_start"] * 1e6 if sim
                             else row["start_ns"] / 1e3)
                    end = (row["sim_end"] * 1e6 if sim
                           else row["end_ns"] / 1e3)
                    lane = (f"sim:{row['lane']}" if sim else row["lane"])
                    spans.append({"name": row["name"], "lane": lane,
                                  "start_us": start,
                                  "dur_us": max(end - start, 0.0)})
                elif row.get("kind") == "metric":
                    snap = row["data"]
                    metrics[snap["name"]] = snap
        return spans, metrics

    with open(path) as fh:
        doc = json.load(fh)
    names = {ev["pid"]: ev["args"]["name"] for ev in doc["traceEvents"]
             if ev.get("ph") == "M" and ev.get("name") == "process_name"}
    for ev in doc["traceEvents"]:
        if ev.get("ph") != "X":
            continue
        spans.append({"name": ev["name"],
                      "lane": names.get(ev["pid"], str(ev["pid"])),
                      "start_us": ev["ts"], "dur_us": ev["dur"]})
    metrics = (doc.get("otherData") or {}).get("metrics") or {}
    return spans, metrics


def union_length(intervals: List[Tuple[float, float]]) -> float:
    """Total length of the union of ``(start, end)`` intervals."""
    total = 0.0
    end_at = None
    for start, end in sorted(intervals):
        if end_at is None or start > end_at:
            total += end - start
            end_at = end
        elif end > end_at:
            total += end - end_at
            end_at = end
    return total


def _fmt_us(us: float) -> str:
    if us >= 1e6:
        return f"{us / 1e6:.3f} s"
    if us >= 1e3:
        return f"{us / 1e3:.2f} ms"
    return f"{us:.1f} us"


def render_report(spans: List[dict], metrics: Dict[str, dict],
                  top: int = 10) -> str:
    """Format the summary text (pure function; ``main`` prints it)."""
    out: List[str] = []
    if spans:
        t0 = min(s["start_us"] for s in spans)
        t1 = max(s["start_us"] + s["dur_us"] for s in spans)
        window = max(t1 - t0, 1e-9)
        lanes: Dict[str, List[Tuple[float, float]]] = {}
        for s in spans:
            lanes.setdefault(s["lane"], []).append(
                (s["start_us"], s["start_us"] + s["dur_us"]))
        out.append(f"trace window: {_fmt_us(window)}  "
                   f"({len(spans)} spans, {len(lanes)} lanes)")
        out.append("")
        out.append(f"  {'lane':<24} {'spans':>6} {'covered':>12} {'busy':>7}")
        for lane in sorted(lanes, key=lambda name: (name != "coordinator",
                                                    name)):
            ivs = lanes[lane]
            covered = union_length(ivs)
            out.append(f"  {lane:<24} {len(ivs):>6} "
                       f"{_fmt_us(covered):>12} {covered / window:>6.1%}")
        out.append("")
        slowest = sorted(spans, key=lambda s: s["dur_us"], reverse=True)[:top]
        out.append(f"  slowest {len(slowest)} spans:")
        for s in slowest:
            out.append(f"    {_fmt_us(s['dur_us']):>12}  "
                       f"{s['name']}  [{s['lane']}]")
    else:
        out.append("no spans recorded")

    if metrics:
        out.append("")
        out.append("  metrics:")
        for name in sorted(metrics):
            snap = metrics[name]
            if snap["kind"] == "histogram":
                hist = Histogram(name, lo=snap["lo"], growth=snap["growth"])
                hist.buckets = {int(k): v
                                for k, v in snap["buckets"].items()}
                hist.count = snap["count"]
                hist.sum = snap["sum"]
                if snap.get("min") is not None:
                    hist.min = snap["min"]
                    hist.max = snap["max"]
                if hist.count:
                    out.append(
                        f"    {name}: count={hist.count} mean={hist.mean:.6g}"
                        f" p50={hist.quantile(0.50):.6g}"
                        f" p95={hist.quantile(0.95):.6g}"
                        f" p99={hist.quantile(0.99):.6g}"
                    )
                else:
                    out.append(f"    {name}: count=0")
            else:
                out.append(f"    {name}: {snap['value']}")
    return "\n".join(out)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report", description=__doc__)
    parser.add_argument("path", help="Chrome trace JSON or telemetry JSONL")
    parser.add_argument("--top", type=int, default=10,
                        help="how many slowest spans to list")
    args = parser.parse_args(argv)
    spans, metrics = load_events(args.path)
    print(render_report(spans, metrics, top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
