"""Unified observability: trace spans + metrics over every layer.

One process-global :class:`ObsRuntime` (the module singleton :data:`OBS`)
owns a :class:`~repro.obs.span.Tracer` and a
:class:`~repro.obs.metrics.MetricsRegistry`.  Instrumented call sites across
the stack — planner stages, engine steps, gather plan/execute, dynamic-cache
refreshes, the shm data plane, the multiproc backend, and the serving
request lifecycle — all guard on ``OBS.enabled`` and pay a single attribute
load when observability is off.  Nothing in this package touches the math:
enabling tracing records timestamps and counts, so parity suites stay
bit-identical with observability on.

Spans cross the coordinator/worker process boundary: the coordinator puts
``(trace_id, parent span id)`` in the ``run`` control token, workers enable
a local runtime for the epoch, and their spans ride back in the ``done``
message together with a ``(perf_ns, wall_ns)`` clock anchor that lets the
coordinator rebase worker timestamps into its own clock domain (see
:func:`~repro.obs.span.rebase_ns`).

Exporters live in :mod:`repro.obs.exporters` (Chrome ``trace_event`` JSON
for Perfetto, Prometheus text exposition, append-only JSONL) and
``python -m repro.obs.report`` renders a human-readable run summary.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.span import (
    NULL_SPAN,
    SpanRecord,
    Tracer,
    clock_anchor,
    rebase_ns,
    spans_from_wire,
    spans_to_wire,
)

__all__ = [
    "OBS",
    "ObsRuntime",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "SpanRecord",
    "Tracer",
    "clock_anchor",
    "rebase_ns",
    "spans_from_wire",
    "spans_to_wire",
    "enable",
    "disable",
]


class ObsRuntime:
    """Process-global observability switchboard.

    ``enabled`` is the single hot-path guard: instrumented sites read it
    once and skip all telemetry when it is ``False``.  ``enable()`` /
    ``disable()`` mutate this instance in place so references captured at
    import time stay live.
    """

    __slots__ = ("enabled", "tracer", "metrics")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.tracer.metrics = self.metrics

    # -- lifecycle ------------------------------------------------------
    def enable(self, lane: str = "coordinator",
               trace_id: Optional[str] = None) -> "ObsRuntime":
        """Turn telemetry on for this process.

        ``lane`` names this process's timeline in exported traces
        (``"coordinator"``, ``"worker-2"``, ...).  Pass the coordinator's
        ``trace_id`` in worker processes so remote spans join the same
        trace tree.
        """
        self.tracer.configure(lane=lane, trace_id=trace_id)
        self.tracer.enabled = True
        self.enabled = True
        return self

    def disable(self) -> "ObsRuntime":
        """Return to the zero-overhead path; recorded data is kept."""
        self.enabled = False
        self.tracer.enabled = False
        return self

    def reset(self) -> "ObsRuntime":
        """Drop recorded spans and every instrument registration (keeps
        the state of ``enabled``)."""
        self.tracer.reset()
        self.metrics.clear()
        return self

    # -- conveniences ---------------------------------------------------
    def span(self, name: str, **kwargs):
        """Shorthand for ``OBS.tracer.span`` (null no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return self.tracer.span(name, **kwargs)


#: The process-global runtime every instrumented layer guards on.
OBS = ObsRuntime()


def enable(lane: str = "coordinator",
           trace_id: Optional[str] = None) -> ObsRuntime:
    """Module-level alias for ``OBS.enable``."""
    return OBS.enable(lane=lane, trace_id=trace_id)


def disable() -> ObsRuntime:
    """Module-level alias for ``OBS.disable``."""
    return OBS.disable()
