"""Discrete-event simulation of SALIENT++'s minibatch-preparation pipeline.

Schedules the stage graph of every (machine, step) minibatch onto per-machine
CPU / GPU / PCIe / NIC resources, honoring:

* stage dependencies within a minibatch (sample → slice/comm → h2d → train);
* collective synchronization across machines (request exchange, feature
  all-to-all, gradient all-reduce are per-step rendezvous);
* the bounded pipeline depth (at most ``depth`` minibatches in flight per
  machine — 10 in SALIENT++, §4.3);
* the chosen pipeline mode (see :class:`PipelineMode`).

Because every dependency points to an earlier (step, stage) pair and each
resource serves tasks in (step, stage) order — SALIENT++'s pipeline is a
chain of FIFO queues — the schedule is computed with one linear sweep instead
of an event heap, which keeps epoch simulation O(steps × machines).

The simulator yields the epoch makespan and a Figure-8-style attribution
(Train / Train-sync / Startup / Batch-prep compute / Batch-prep comm).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.distributed.executor import EpochReport, StepRecord
from repro.pipeline.costmodel import CostModel, StageTimes, served_rows_matrix


class PipelineMode(enum.Enum):
    """How much of the minibatch preparation overlaps with training.

    FULL
        SALIENT++: all stages pipelined, communication included.
    BLOCKING_COMM
        Feature communication happens synchronously in the training loop
        (Table 1 row "+ Partitioned features": sampling is still prepared in
        the background, but each step's remote fetch blocks training).
    OFF
        Fully sequential minibatches (the "pipelining off" breakdown of
        Figure 8).
    """

    FULL = "full"
    BLOCKING_COMM = "blocking_comm"
    OFF = "off"


@dataclass
class PipelineResult:
    """Outcome of simulating one epoch."""

    epoch_time: float
    num_steps: int
    num_machines: int
    breakdown: Dict[str, float]
    resource_busy: Dict[str, np.ndarray]  # resource -> (K,) busy seconds
    first_train_start: float

    def bottleneck_resource(self) -> str:
        return max(self.resource_busy, key=lambda r: float(self.resource_busy[r].max()))


def simulate_epoch(
    report: EpochReport,
    cost_model: CostModel,
    *,
    mode: PipelineMode = PipelineMode.FULL,
    depth: int = 10,
    include_allreduce: bool = True,
) -> PipelineResult:
    """Simulate one epoch from a functional :class:`EpochReport`.

    Returns the epoch makespan (including pipeline warm-up, as the paper's
    reported runtimes do) and per-category time attribution.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    K = report.ledger.num_machines
    steps = report.steps_per_machine
    by_step: List[List[StepRecord]] = [[] for _ in range(steps)]
    for rec in report.records:
        by_step[rec.step].append(rec)
    for s, recs in enumerate(by_step):
        recs.sort(key=lambda r: r.machine)
        if len(recs) != K:
            raise ValueError(f"step {s} has {len(recs)} records, expected {K}")

    # Stage durations.
    times: List[List[StageTimes]] = []
    for recs in by_step:
        served = served_rows_matrix(recs, K)
        times.append([cost_model.stage_times(recs[k], int(served[k])) for k in range(K)])
    allreduce_dur = cost_model.allreduce_time() if include_allreduce else 0.0

    # Resource availability clocks.  The CPU is modeled as W parallel
    # batch-preparation lanes per machine (SALIENT runs ~30 shared-memory
    # sampling/slicing workers; 16 cores sustain several batches in flight).
    workers = max(1, cost_model.cluster.machine.cpu_workers)
    cpu = np.zeros((K, workers))
    gpu = np.zeros(K)
    pcie = np.zeros(K)
    net = np.zeros(K)       # feature/metadata all-to-alls
    grad_net = np.zeros(K)  # gradient all-reduce (own NCCL stream/channel)

    # Completion times needed across steps.
    done_train = np.zeros(K)          # TRAIN end of previous step
    done_allreduce = 0.0              # ALLREDUCE end of previous step
    release = np.zeros((steps, K))    # pipeline-slot release times
    train_end = np.zeros((steps, K))
    sync_wait = np.zeros((steps, K))
    first_train_start = None

    busy = {name: np.zeros(K) for name in ("cpu", "gpu", "pcie", "net", "grad_net")}

    def run(clock: np.ndarray, k: int, ready: float, dur: float, name: str) -> float:
        start = max(ready, clock[k])
        clock[k] = start + dur
        busy[name][k] += dur
        return clock[k]

    def run_cpu(k: int, ready: float, dur: float) -> float:
        lane = int(np.argmin(cpu[k]))
        start = max(ready, cpu[k, lane])
        cpu[k, lane] = start + dur
        busy["cpu"][k] += dur
        return cpu[k, lane]

    for s in range(steps):
        st = times[s]

        # --- SAMPLE (CPU): gated by the pipeline depth and mode. ---
        sample_end = np.zeros(K)
        for k in range(K):
            ready = 0.0
            if s >= depth:
                ready = max(ready, release[s - depth, k])
            if mode is PipelineMode.OFF and s > 0:
                ready = max(ready, release[s - 1, k])
            sample_end[k] = run_cpu(k, ready, st[k].sample)

        # --- REQUEST_EXCHANGE (NET): per-step rendezvous. ---
        any_comm = any(t.request_exchange > 0 or t.feature_comm > 0 for t in st)
        if any_comm:
            if mode is PipelineMode.BLOCKING_COMM:
                # The training loop performs the fetch: it cannot start
                # before the previous step's training finished anywhere
                # (bulk-synchronous loop).
                gate = max(float(done_train.max()), done_allreduce)
            else:
                gate = 0.0
            req_ready = max(float(sample_end.max()), gate)
            req_start = max(req_ready, float(net.max()))
            req_end = np.zeros(K)
            for k in range(K):
                dur = st[k].request_exchange
                net[k] = req_start + dur
                busy["net"][k] += dur
                req_end[k] = net[k]
        else:
            req_end = sample_end.copy()

        # --- LOCAL_SLICE and SERVE_SLICE (CPU). ---
        local_slice_end = np.zeros(K)
        serve_end = np.zeros(K)
        for k in range(K):
            local_slice_end[k] = run_cpu(k, sample_end[k], st[k].local_slice)
            serve_end[k] = run_cpu(k, req_end[k], st[k].serve_slice)

        # --- FEATURE_COMM (NET): all-to-all; needs every server's slices. ---
        if any_comm:
            comm_ready = float(serve_end.max())
            comm_start = max(comm_ready, float(net.max()))
            comm_end = np.zeros(K)
            for k in range(K):
                dur = st[k].feature_comm
                net[k] = comm_start + dur
                busy["net"][k] += dur
                comm_end[k] = net[k]
        else:
            comm_end = req_end.copy()

        # --- H2D (PCIe) then GPU_GATHER + TRAIN (GPU). ---
        for k in range(K):
            h2d_ready = max(local_slice_end[k], comm_end[k])
            h2d_end = run(pcie, k, h2d_ready, st[k].h2d, "pcie")
            gather_end = run(gpu, k, h2d_end, st[k].gpu_gather, "gpu")
            t_end = run(gpu, k, gather_end, st[k].train, "gpu")
            train_end[s, k] = t_end
        if first_train_start is None:
            first_train_start = float(
                min(train_end[0, k] - st[k].train for k in range(K))
            )

        # --- ALLREDUCE: global barrier closing the step, on the gradient
        # channel (NCCL stream), so it does not serialize feature traffic.
        # DDP bucketing overlaps the reduction with the backward pass, so it
        # becomes ready about one-third into training (after the first
        # buckets of the backward two-thirds are reduced). ---
        if allreduce_dur > 0 and K > 1:
            ar_ready = float(max(
                train_end[s, k] - (2.0 / 3.0) * st[k].train for k in range(K)
            ))
            ar_start = max(ar_ready, float(grad_net.max()))
            ar_end = ar_start + allreduce_dur
            for k in range(K):
                grad_net[k] = ar_end
                busy["grad_net"][k] += allreduce_dur
                sync_wait[s, k] = max(0.0, ar_end - train_end[s, k])
            done_allreduce = ar_end
            release[s] = np.maximum(ar_end, train_end[s])
        else:
            release[s] = train_end[s]
            done_allreduce = float(train_end[s].max())
        done_train = train_end[s].copy()

    epoch_time = float(release[-1].max())

    # ------------------------------------------------------------------
    # Figure-8 style attribution (averaged over machines).
    train_total = float(np.mean([sum(times[s][k].train for s in range(steps))
                                 for k in range(K)]))
    sync_total = float(np.mean(sync_wait.sum(axis=0)))
    startup = float(first_train_start or 0.0)
    prep_comp = float(np.mean([sum(times[s][k].preparation_compute()
                                   + times[s][k].h2d for s in range(steps))
                               for k in range(K)]))
    prep_comm = float(np.mean([sum(times[s][k].preparation_comm() for s in range(steps))
                               for k in range(K)]))
    breakdown = {
        "train": train_total,
        "train_sync": sync_total,
        "startup": startup,
        "batch_prep_comp": prep_comp,
        "batch_prep_comm": prep_comm,
        # Residual: time not attributable to the above when stages overlap
        # (zero-ish when pipelining is off).
        "overlap_residual": max(
            0.0, epoch_time - (train_total + sync_total + startup)
        ),
    }
    return PipelineResult(
        epoch_time=epoch_time,
        num_steps=steps,
        num_machines=K,
        breakdown=breakdown,
        resource_busy=busy,
        first_train_start=startup,
    )
