"""Discrete-event simulation of SALIENT++'s minibatch-preparation pipeline.

Schedules the stage graph of every (machine, step) minibatch onto per-machine
CPU / GPU / PCIe / NIC resources, honoring:

* stage dependencies within a minibatch (sample → slice/comm → h2d → train);
* collective synchronization across machines (request exchange, feature
  all-to-all, gradient all-reduce are per-step rendezvous);
* the bounded pipeline depth (at most ``depth`` minibatches in flight per
  machine — 10 in SALIENT++, §4.3);
* the chosen pipeline mode (see :class:`PipelineMode`).

Because every dependency points to an earlier (step, stage) pair and each
resource serves tasks in (step, stage) order — SALIENT++'s pipeline is a
chain of FIFO queues — the schedule is computed with one linear sweep instead
of an event heap, which keeps epoch simulation O(steps × machines).

The simulator yields the epoch makespan and a Figure-8-style attribution
(Train / Train-sync / Startup / Batch-prep compute / Batch-prep comm).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.distributed.executor import EpochReport
from repro.pipeline.costmodel import CostModel
from repro.pipeline.events import EventTrace, Stage, trace_from_report


class PipelineMode(enum.Enum):
    """How much of the minibatch preparation overlaps with training.

    FULL
        SALIENT++: all stages pipelined, communication included.
    BLOCKING_COMM
        Feature communication happens synchronously in the training loop
        (Table 1 row "+ Partitioned features": sampling is still prepared in
        the background, but each step's remote fetch blocks training).
    OFF
        Fully sequential minibatches (the "pipelining off" breakdown of
        Figure 8).
    """

    FULL = "full"
    BLOCKING_COMM = "blocking_comm"
    OFF = "off"


@dataclass
class PipelineResult:
    """Outcome of simulating one epoch."""

    epoch_time: float
    num_steps: int
    num_machines: int
    breakdown: Dict[str, float]
    resource_busy: Dict[str, np.ndarray]  # resource -> (K,) busy seconds
    first_train_start: float

    def bottleneck_resource(self) -> str:
        return max(self.resource_busy, key=lambda r: float(self.resource_busy[r].max()))


def simulate_trace(
    trace: EventTrace,
    cost_model: CostModel,
    *,
    mode: PipelineMode = PipelineMode.FULL,
    depth: int = 10,
    include_allreduce: bool = True,
) -> PipelineResult:
    """Simulate one epoch from an engine-emitted :class:`EventTrace`.

    The unified event path: engines emit the stage events they actually
    executed (per-step for ``bsp``/``async``, window-coalesced comm for
    ``pipelined``, allreduce only at sync points for ``async``) and this
    scheduler prices them on the cluster's CPU / GPU / PCIe / NIC resources,
    honoring stage dependencies, depth gating, mode, and the collective
    rendezvous per comm window.  :func:`simulate_epoch` is a thin wrapper
    that reconstructs a per-step trace from an :class:`EpochReport`'s
    records and prices it here.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    K = trace.num_machines
    steps = trace.num_steps
    idx = trace.validate().index()
    allreduce_at = set(trace.allreduce_steps)

    # A multi-step comm window *is* an in-flight schedule: the engine
    # really sampled and fetched those steps together, so simulating them
    # serialized (OFF / BLOCKING_COMM) or with fewer in-flight slots than
    # the window holds would contradict the trace (and the sample gates
    # would read release times not yet computed).  Reject instead of
    # silently producing an optimistic schedule.
    max_window = max((hi - lo) for lo, hi in trace.windows) if trace.windows else 1
    if max_window > 1:
        if mode is not PipelineMode.FULL:
            raise ValueError(
                f"trace has {max_window}-step comm windows; only "
                f"PipelineMode.FULL can price an in-flight schedule "
                f"(got {mode})"
            )
        if depth < max_window:
            raise ValueError(
                f"simulated depth {depth} is smaller than the trace's "
                f"{max_window}-step comm windows; the engine kept "
                f"{max_window} batches in flight"
            )

    def dur(stage: Stage, k: int, s: int) -> float:
        return cost_model.event_duration(idx[(stage, k, s)])

    allreduce_dur = cost_model.allreduce_time() if include_allreduce else 0.0

    workers = max(1, cost_model.cluster.machine.cpu_workers)
    cpu = np.zeros((K, workers))
    gpu = np.zeros(K)
    pcie = np.zeros(K)
    net = np.zeros(K)
    grad_net = np.zeros(K)

    done_train = np.zeros(K)
    done_allreduce = 0.0
    release = np.zeros((steps, K))
    train_end = np.zeros((steps, K))
    sample_end = np.zeros((steps, K))
    local_slice_end = np.zeros((steps, K))
    sync_wait = np.zeros((steps, K))
    first_train_start = None

    busy = {name: np.zeros(K) for name in ("cpu", "gpu", "pcie", "net", "grad_net")}

    def run(clock: np.ndarray, k: int, ready: float, d: float, name: str) -> float:
        start = max(ready, clock[k])
        clock[k] = start + d
        busy[name][k] += d
        return clock[k]

    def run_cpu(k: int, ready: float, d: float) -> float:
        lane = int(np.argmin(cpu[k]))
        start = max(ready, cpu[k, lane])
        cpu[k, lane] = start + d
        busy["cpu"][k] += d
        return cpu[k, lane]

    for w0, w1 in trace.windows:
        # --- SAMPLE (CPU) per step: gated by pipeline depth / mode. ---
        for s in range(w0, w1):
            for k in range(K):
                ready = 0.0
                if s >= depth:
                    ready = max(ready, release[s - depth, k])
                if mode is PipelineMode.OFF and s > 0:
                    ready = max(ready, release[s - 1, k])
                sample_end[s, k] = run_cpu(k, ready, dur(Stage.SAMPLE, k, s))

        # --- REQUEST_EXCHANGE (NET): one rendezvous per comm window. ---
        req_dur = [dur(Stage.REQUEST_EXCHANGE, k, w0) for k in range(K)]
        comm_dur = [dur(Stage.FEATURE_COMM, k, w0) for k in range(K)]
        any_comm = any(rd > 0 or cd > 0 for rd, cd in zip(req_dur, comm_dur))
        window_sample_end = sample_end[w0:w1]
        if any_comm:
            if mode is PipelineMode.BLOCKING_COMM:
                gate = max(float(done_train.max()), done_allreduce)
            else:
                gate = 0.0
            req_ready = max(float(window_sample_end.max()), gate)
            req_start = max(req_ready, float(net.max()))
            req_end = np.zeros(K)
            for k in range(K):
                net[k] = req_start + req_dur[k]
                busy["net"][k] += req_dur[k]
                req_end[k] = net[k]
        else:
            req_end = window_sample_end.max(axis=0)

        # --- LOCAL_SLICE (per step) and SERVE_SLICE (per window), CPU. ---
        serve_end = np.zeros(K)
        for s in range(w0, w1):
            for k in range(K):
                local_slice_end[s, k] = run_cpu(
                    k, sample_end[s, k], dur(Stage.LOCAL_SLICE, k, s)
                )
        for k in range(K):
            serve_end[k] = run_cpu(k, req_end[k], dur(Stage.SERVE_SLICE, k, w0))

        # --- FEATURE_COMM (NET): all-to-all; needs every server's slices. ---
        if any_comm:
            comm_ready = float(serve_end.max())
            comm_start = max(comm_ready, float(net.max()))
            comm_end = np.zeros(K)
            for k in range(K):
                net[k] = comm_start + comm_dur[k]
                busy["net"][k] += comm_dur[k]
                comm_end[k] = net[k]
        else:
            comm_end = req_end.copy()

        # --- Per step: H2D (PCIe), GPU_GATHER + TRAIN (GPU), ALLREDUCE. ---
        for s in range(w0, w1):
            train_dur = [dur(Stage.TRAIN, k, s) for k in range(K)]
            for k in range(K):
                h2d_ready = max(local_slice_end[s, k], comm_end[k])
                h2d_end = run(pcie, k, h2d_ready, dur(Stage.H2D, k, s), "pcie")
                gather_end = run(gpu, k, h2d_end,
                                 dur(Stage.GPU_GATHER, k, s), "gpu")
                train_end[s, k] = run(gpu, k, gather_end, train_dur[k], "gpu")
            if first_train_start is None:
                first_train_start = float(
                    min(train_end[0, k] - train_dur[k] for k in range(K))
                )
            if s in allreduce_at and allreduce_dur > 0 and K > 1:
                ar_ready = float(max(
                    train_end[s, k] - (2.0 / 3.0) * train_dur[k]
                    for k in range(K)
                ))
                ar_start = max(ar_ready, float(grad_net.max()))
                ar_end = ar_start + allreduce_dur
                for k in range(K):
                    grad_net[k] = ar_end
                    busy["grad_net"][k] += allreduce_dur
                    sync_wait[s, k] = max(0.0, ar_end - train_end[s, k])
                done_allreduce = ar_end
                release[s] = np.maximum(ar_end, train_end[s])
            else:
                release[s] = train_end[s]
                done_allreduce = float(train_end[s].max())
            done_train = train_end[s].copy()

    epoch_time = float(release[-1].max())

    # ------------------------------------------------------------------
    # Figure-8 style attribution (averaged over machines), from events.
    train_total = float(np.mean([
        sum(dur(Stage.TRAIN, k, s) for s in range(steps)) for k in range(K)
    ]))
    sync_total = float(np.mean(sync_wait.sum(axis=0)))
    startup = float(first_train_start or 0.0)
    prep_comp = float(np.mean([
        sum(dur(Stage.SAMPLE, k, s) + dur(Stage.LOCAL_SLICE, k, s)
            + dur(Stage.GPU_GATHER, k, s) + dur(Stage.H2D, k, s)
            for s in range(steps))
        + sum(dur(Stage.SERVE_SLICE, k, w0) for w0, _ in trace.windows)
        for k in range(K)
    ]))
    prep_comm = float(np.mean([
        sum(dur(Stage.REQUEST_EXCHANGE, k, w0) + dur(Stage.FEATURE_COMM, k, w0)
            for w0, _ in trace.windows)
        for k in range(K)
    ]))
    breakdown = {
        "train": train_total,
        "train_sync": sync_total,
        "startup": startup,
        "batch_prep_comp": prep_comp,
        "batch_prep_comm": prep_comm,
        "overlap_residual": max(
            0.0, epoch_time - (train_total + sync_total + startup)
        ),
    }
    return PipelineResult(
        epoch_time=epoch_time,
        num_steps=steps,
        num_machines=K,
        breakdown=breakdown,
        resource_busy=busy,
        first_train_start=startup,
    )


def simulate_epoch(
    report: EpochReport,
    cost_model: CostModel,
    *,
    mode: PipelineMode = PipelineMode.FULL,
    depth: int = 10,
    include_allreduce: bool = True,
) -> PipelineResult:
    """Simulate one epoch from a functional :class:`EpochReport`.

    Returns the epoch makespan (including pipeline warm-up, as the paper's
    reported runtimes do) and per-category time attribution.

    This is the record-based path: the lock-step BSP schedule is re-derived
    from :class:`StepRecord` volumes.  Reports produced by an execution
    engine carry the engine's own schedule (``report.events``), which
    :func:`simulate_trace` prices directly — identical to this function for
    per-step traces, and the only correct option for engines that coalesce
    communication windows or skip allreduce barriers.
    """
    trace = trace_from_report(report, cost_model.dims)
    return simulate_trace(trace, cost_model, mode=mode, depth=depth,
                          include_allreduce=include_allreduce)
