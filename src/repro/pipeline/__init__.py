"""Performance model: cost model + discrete-event pipeline simulator.

Reproduces the paper's §4.3 deep-pipelining design and Appendix D stage
taxonomy: exact per-step workload volumes from the functional executor are
priced into stage durations and scheduled onto per-machine CPU/GPU/PCIe/NIC
resources, yielding deterministic epoch times and Figure-8-style
attributions.  Dynamic-cache maintenance (insertion memcpys, refresh
fetches) is charged on the same resources.
"""

from repro.pipeline.costmodel import (
    CostModel,
    ModelDims,
    StageTimes,
    served_rows_matrix,
)
from repro.pipeline.events import (
    EventTrace,
    Stage,
    StageEvent,
    assert_trace_shape_equal,
    trace_from_report,
    trace_shape,
    trace_shape_diff,
)
from repro.pipeline.simulator import (
    PipelineMode,
    PipelineResult,
    simulate_epoch,
    simulate_trace,
)

__all__ = [
    "CostModel",
    "ModelDims",
    "StageTimes",
    "served_rows_matrix",
    "EventTrace",
    "Stage",
    "StageEvent",
    "assert_trace_shape_equal",
    "trace_from_report",
    "trace_shape",
    "trace_shape_diff",
    "PipelineMode",
    "PipelineResult",
    "simulate_epoch",
    "simulate_trace",
]
