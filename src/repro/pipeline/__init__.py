"""Performance model: cost model + discrete-event pipeline simulator."""

from repro.pipeline.costmodel import (
    CostModel,
    ModelDims,
    StageTimes,
    served_rows_matrix,
)
from repro.pipeline.simulator import PipelineMode, PipelineResult, simulate_epoch

__all__ = [
    "CostModel",
    "ModelDims",
    "StageTimes",
    "served_rows_matrix",
    "PipelineMode",
    "PipelineResult",
    "simulate_epoch",
]
