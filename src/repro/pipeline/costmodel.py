"""Cost model: workload volumes → per-stage durations.

Translates the exact per-step volumes recorded by the functional executor
(:class:`~repro.distributed.executor.StepRecord`) into stage durations on the
:class:`~repro.distributed.cluster.ClusterSpec` resources.  The discrete-event
simulator schedules these durations; nothing here depends on wall-clock
measurements, so results are deterministic and machine-independent.

Stage taxonomy (coarsened from the 10 stages of Appendix D):

====================  =========  =================================================
stage                 resource   volume driver
====================  =========  =================================================
SAMPLE                CPU        candidate adjacency entries examined
REQUEST_EXCHANGE      NET        two metadata rounds + vertex-id lists (stages 2-5)
LOCAL_SLICE           CPU        local CPU rows + cached rows sliced (stage 6)
SERVE_SLICE           CPU        rows sliced for peers' requests (stages 6-8)
FEATURE_COMM          NET        remote feature payload in + served payload out
H2D                   PCIe       host-resident rows copied to device (stage 7)
GPU_GATHER            GPU        GPU-resident rows sliced + concat (stage 8)
TRAIN                 GPU        forward + backward GEMM FLOPs
ALLREDUCE             NET        gradient ring all-reduce (with the model update)
====================  =========  =================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.distributed.cluster import ClusterSpec
from repro.distributed.executor import StepRecord


@dataclass(frozen=True)
class ModelDims:
    """Dimensions needed to price the GNN compute."""

    in_dim: int
    hidden_dim: int
    out_dim: int

    @property
    def as_tuple(self):
        return (self.in_dim, self.hidden_dim, self.out_dim)


@dataclass
class StageTimes:
    """Durations (seconds) of one machine's stages for one minibatch."""

    sample: float
    request_exchange: float
    local_slice: float
    serve_slice: float
    feature_comm: float
    h2d: float
    gpu_gather: float
    train: float

    def preparation_compute(self) -> float:
        return self.sample + self.local_slice + self.serve_slice + self.gpu_gather

    def preparation_comm(self) -> float:
        return self.request_exchange + self.feature_comm


class CostModel:
    """Prices :class:`StepRecord` volumes on a :class:`ClusterSpec`.

    Parameters
    ----------
    bytes_per_row:
        Feature row payload (feature_dim × itemsize).
    dims:
        Model dimensions for the FLOP estimate.
    grad_nbytes:
        Gradient wire size for the all-reduce stage.
    """

    def __init__(self, cluster: ClusterSpec, bytes_per_row: int,
                 dims: ModelDims, grad_nbytes: int):
        self.cluster = cluster
        self.bytes_per_row = int(bytes_per_row)
        self.dims = dims
        self.grad_nbytes = int(grad_nbytes)

    # ------------------------------------------------------------------
    def stage_times(self, rec: StepRecord, served_rows: int) -> StageTimes:
        """Durations for one machine-step.

        ``served_rows`` is the number of rows this machine must slice and
        send to peers in the same step (computed by the simulator from all
        machines' records, since a machine cannot know it locally).
        """
        m = self.cluster.machine
        net = self.cluster.network
        bpr = self.bytes_per_row
        g = rec.gather

        sample = rec.candidate_edges / m.sample_rate + m.overhead_per_batch
        # Coalesced rows (deduplicated against another in-flight batch) are
        # host-resident by the time this batch assembles, like cached rows.
        host_rows = g.cpu_rows + g.cached_rows + g.coalesced_rows
        # Dynamic-cache maintenance is CPU work: every admitted or refreshed
        # row is one extra memcpy into the cache slab.
        cache_update_rows = g.cache_insertions
        local_slice = (host_rows + cache_update_rows) * bpr / m.cpu_slice_rate
        serve = served_rows * bpr / m.cpu_slice_rate

        # Cache-update traffic (vip-refresh swaps) rides the same wire as
        # demand fetches, so it is added to this machine's inbound volume.
        remote_rows = g.remote_rows + g.refresh_fetch_rows
        if remote_rows == 0 and served_rows == 0:
            request_exchange = 0.0
            feature_comm = 0.0
        else:
            # Stages 2-5: two metadata/id all-to-all rounds.
            id_bytes = (remote_rows + served_rows) * 8
            request_exchange = 2 * net.latency + id_bytes / net.effective_bandwidth
            # Stage 9: feature payload; full duplex, so the max of the two
            # directions bounds this machine's wire time.
            in_bytes = remote_rows * bpr
            out_bytes = served_rows * bpr
            feature_comm = net.latency + max(in_bytes, out_bytes) / net.effective_bandwidth

        # Only demand rows cross PCIe; refreshed cache rows stay host-side.
        h2d_rows = host_rows + g.remote_rows
        h2d = h2d_rows * bpr / m.pcie_bandwidth
        gpu_gather = (g.gpu_rows + g.total_rows) * bpr / m.gpu_slice_rate
        train = rec.flops(*self.dims.as_tuple) / m.gpu_flops

        return StageTimes(
            sample=sample,
            request_exchange=request_exchange,
            local_slice=local_slice,
            serve_slice=serve,
            feature_comm=feature_comm,
            h2d=h2d,
            gpu_gather=gpu_gather,
            train=train,
        )

    def allreduce_time(self) -> float:
        return self.cluster.all_reduce_time(self.grad_nbytes)

    # ------------------------------------------------------------------
    def event_duration(self, ev) -> float:
        """Price one :class:`~repro.pipeline.events.StageEvent` (seconds).

        Uses the same rate formulas as :meth:`stage_times`, so a per-step
        event trace prices identically to the record-based path (the parity
        tests assert exact float equality).
        """
        from repro.pipeline.events import Stage

        m = self.cluster.machine
        net = self.cluster.network
        bpr = self.bytes_per_row
        stage = ev.stage
        if stage is Stage.SAMPLE:
            return ev.volume("candidate_edges") / m.sample_rate + m.overhead_per_batch
        if stage is Stage.LOCAL_SLICE:
            return ev.volume("rows") * bpr / m.cpu_slice_rate
        if stage is Stage.SERVE_SLICE:
            return ev.volume("rows") * bpr / m.cpu_slice_rate
        if stage is Stage.REQUEST_EXCHANGE:
            request, serve = ev.volume("request_rows"), ev.volume("serve_rows")
            if request == 0 and serve == 0:
                return 0.0
            id_bytes = (request + serve) * 8
            return 2 * net.latency + id_bytes / net.effective_bandwidth
        if stage is Stage.FEATURE_COMM:
            in_rows, out_rows = ev.volume("in_rows"), ev.volume("out_rows")
            if in_rows == 0 and out_rows == 0:
                return 0.0
            in_bytes = in_rows * bpr
            out_bytes = out_rows * bpr
            return net.latency + max(in_bytes, out_bytes) / net.effective_bandwidth
        if stage is Stage.H2D:
            return ev.volume("rows") * bpr / m.pcie_bandwidth
        if stage is Stage.GPU_GATHER:
            return (ev.volume("gpu_rows") + ev.volume("total_rows")) * bpr / m.gpu_slice_rate
        if stage is Stage.TRAIN:
            return ev.volume("flops") / m.gpu_flops
        if stage is Stage.ALLREDUCE:
            return self.allreduce_time()
        if stage is Stage.CACHE_REFRESH:
            rows = ev.volume("rows")
            if rows == 0:
                return 0.0
            # A refresh is one background fetch round: id list out, feature
            # payload back — same wire formulas as the demand stages.
            return (2 * net.latency + rows * 8 / net.effective_bandwidth
                    + rows * bpr / net.effective_bandwidth)
        raise ValueError(f"unknown stage {stage!r}")


def served_rows_matrix(step_records: Sequence[StepRecord], num_machines: int) -> np.ndarray:
    """Rows each machine serves in one step: ``served[k] = Σ_j requests j→k``
    (demand fetches plus any cache-refresh fetches issued that step)."""
    served = np.zeros(num_machines, dtype=np.int64)
    for rec in step_records:
        served += rec.gather.remote_per_peer
        if rec.gather.refresh_fetch_per_peer is not None:
            served += rec.gather.refresh_fetch_per_peer
    return served
