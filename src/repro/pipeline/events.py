"""Stage events: the execution engines' schedule, as data.

Historically the discrete-event simulator *reconstructed* the pipeline's
stage graph from :class:`~repro.distributed.executor.StepRecord` volumes —
fine while the functional executor had exactly one schedule (lock-step BSP),
but wrong the moment engines differ in what they overlap or coalesce.  This
module turns the schedule into an explicit artifact: every execution engine
emits one :class:`StageEvent` per (stage, machine, step-or-window) with the
exact volumes that stage moved, and the simulator prices *that* — the same
taxonomy as :mod:`repro.pipeline.costmodel` (Appendix D):

======================  ==========================  =========================
stage                   granularity                 volumes
======================  ==========================  =========================
SAMPLE                  per (machine, step)         candidate_edges
LOCAL_SLICE             per (machine, step)         rows (host + cache upd.)
REQUEST_EXCHANGE        per (machine, comm window)  request_rows, serve_rows
SERVE_SLICE             per (machine, comm window)  rows
FEATURE_COMM            per (machine, comm window)  in_rows, out_rows
H2D                     per (machine, step)         rows
GPU_GATHER              per (machine, step)         gpu_rows, total_rows
TRAIN                   per (machine, step)         flops
ALLREDUCE               per step (all machines)     —
======================  ==========================  =========================

A *comm window* is the engine's unit of communication: one step for ``bsp``
and ``async``, up to ``depth`` steps for ``pipelined`` (whose in-flight
batches share one deduplicated peer exchange).  :func:`trace_from_report`
builds the per-step (window size 1) trace from recorded volumes, so legacy
reports and engine-emitted traces flow through one pricing path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.distributed.executor import EpochReport


class Stage(enum.Enum):
    """Pipeline stage taxonomy (matches the cost model's).

    ``CACHE_REFRESH`` is serving-only: a dynamic cache's refresh fetch,
    executed *after* the window's responses are sent (it delays the next
    window, not the in-flight requests).  Training engines never emit it —
    their refresh traffic genuinely blocks the epoch loop and is folded
    into the window's comm volumes instead.
    """

    SAMPLE = "sample"
    REQUEST_EXCHANGE = "request_exchange"
    LOCAL_SLICE = "local_slice"
    SERVE_SLICE = "serve_slice"
    FEATURE_COMM = "feature_comm"
    H2D = "h2d"
    GPU_GATHER = "gpu_gather"
    TRAIN = "train"
    ALLREDUCE = "allreduce"
    CACHE_REFRESH = "cache_refresh"


#: Stages emitted once per (machine, comm window) rather than per step.
WINDOW_STAGES = (Stage.REQUEST_EXCHANGE, Stage.SERVE_SLICE, Stage.FEATURE_COMM)


@dataclass(frozen=True)
class StageEvent:
    """One stage execution with its exact volumes.

    ``step`` is the owning minibatch step for per-step stages; for window
    stages it is the window's first step.  ``machine`` is ``-1`` for the
    global ALLREDUCE rendezvous.  ``volumes`` holds the integer/float
    drivers the cost model prices (see the module table).
    """

    stage: Stage
    machine: int
    step: int
    volumes: Tuple[Tuple[str, float], ...] = ()

    def volume(self, key: str, default: float = 0.0) -> float:
        for k, v in self.volumes:
            if k == key:
                return v
        return default


def _vols(**kw) -> Tuple[Tuple[str, float], ...]:
    return tuple(kw.items())


@dataclass
class EventTrace:
    """The full stage-event schedule of one functional epoch.

    ``windows`` partitions ``range(num_steps)`` into the engine's comm
    windows (half-open ``(start, end)`` pairs, in order, covering every
    step).  ``allreduce_steps`` lists the steps the engine closed with a
    gradient synchronization — every step for ``bsp``/``pipelined``, only
    the sync points for bounded-staleness ``async``.

    Training engines run *lock-step*: every machine executes every step, so
    validation demands per-step stages for each (machine, step) pair.  The
    serving subsystem's schedule is *per-machine*: each step is one
    micro-batch owned by exactly one machine, and machines progress
    independently.  Setting ``machine_of_step`` (one owning machine per
    step) switches validation to that shape — per-step stages are required
    only on the owning machine, and every step of a comm window must share
    one owner (a serving flush window is a single machine's coalesced
    fetch).
    """

    engine: str
    num_machines: int
    num_steps: int
    windows: List[Tuple[int, int]]
    allreduce_steps: List[int] = field(default_factory=list)
    events: List[StageEvent] = field(default_factory=list)
    machine_of_step: Optional[List[int]] = None
    _index: Optional[Dict[Tuple["Stage", int, int], StageEvent]] = \
        field(default=None, repr=False, compare=False)

    def add(self, stage: Stage, machine: int, step: int, **volumes) -> None:
        self._index = None  # appended events invalidate the memoized index
        self.events.append(StageEvent(
            stage=stage, machine=machine, step=step, volumes=_vols(**volumes)
        ))

    def index(self) -> Dict[Tuple[Stage, int, int], StageEvent]:
        """(stage, machine, step) -> event (window stages keyed by window
        start), memoized until the next :meth:`add`.  Duplicate keys are an
        engine bug and raise."""
        if self._index is not None:
            return self._index
        out: Dict[Tuple[Stage, int, int], StageEvent] = {}
        for ev in self.events:
            key = (ev.stage, ev.machine, ev.step)
            if key in out:
                raise ValueError(f"duplicate stage event {key}")
            out[key] = ev
        self._index = out
        return out

    def validate(self) -> "EventTrace":
        """Structural checks: windows tile the step range; per-step stages
        present for every (machine, step) — or, with ``machine_of_step``
        set, for each step's owning machine; window stages per window."""
        covered = [s for lo, hi in self.windows for s in range(lo, hi)]
        if covered != list(range(self.num_steps)):
            raise ValueError(
                f"windows {self.windows} do not tile {self.num_steps} steps"
            )
        owners = self.machine_of_step
        if owners is not None:
            if len(owners) != self.num_steps:
                raise ValueError(
                    f"machine_of_step has {len(owners)} entries for "
                    f"{self.num_steps} steps"
                )
            if any(not 0 <= k < self.num_machines for k in owners):
                raise ValueError("machine_of_step entries out of range")
        idx = self.index()
        per_step = (Stage.SAMPLE, Stage.LOCAL_SLICE, Stage.H2D,
                    Stage.GPU_GATHER, Stage.TRAIN)
        for s in range(self.num_steps):
            machines = range(self.num_machines) if owners is None else (owners[s],)
            for k in machines:
                for st in per_step:
                    if (st, k, s) not in idx:
                        raise ValueError(f"missing {st.value} event for "
                                         f"machine {k}, step {s}")
        for lo, hi in self.windows:
            if owners is None:
                machines = range(self.num_machines)
            else:
                if len(set(owners[lo:hi])) != 1:
                    raise ValueError(
                        f"window ({lo}, {hi}) spans machines "
                        f"{sorted(set(owners[lo:hi]))}; per-machine windows "
                        f"must have one owner"
                    )
                machines = (owners[lo],)
            for k in machines:
                for st in WINDOW_STAGES:
                    if (st, k, lo) not in idx:
                        raise ValueError(f"missing {st.value} event for "
                                         f"machine {k}, window {lo}")
        for s in self.allreduce_steps:
            if (Stage.ALLREDUCE, -1, s) not in idx:
                raise ValueError(f"missing allreduce event for step {s}")
        return self


def trace_from_report(report: EpochReport, dims,
                      engine: str = "bsp") -> EventTrace:
    """Reconstruct the per-step (window size 1) trace from recorded volumes.

    This is the legacy adapter: a report produced without an event trace
    (or by code predating engines) gets the lock-step BSP schedule its
    records imply.  ``dims`` is a :class:`~repro.pipeline.costmodel.ModelDims`
    (the TRAIN events need FLOPs, which depend on model widths).
    """
    from repro.pipeline.costmodel import served_rows_matrix

    K = report.ledger.num_machines
    steps = report.steps_per_machine
    by_step: List[List] = [[] for _ in range(steps)]
    for rec in report.records:
        by_step[rec.step].append(rec)
    for s, recs in enumerate(by_step):
        recs.sort(key=lambda r: r.machine)
        if len(recs) != K:
            raise ValueError(f"step {s} has {len(recs)} records, expected {K}")

    trace = EventTrace(
        engine=engine, num_machines=K, num_steps=steps,
        windows=[(s, s + 1) for s in range(steps)],
        allreduce_steps=list(range(steps)),
    )
    for s, recs in enumerate(by_step):
        served = served_rows_matrix(recs, K)
        for k, rec in enumerate(recs):
            emit_step_events(trace, rec, int(served[k]), dims)
        trace.add(Stage.ALLREDUCE, -1, s)
    return trace


def emit_step_events(trace: EventTrace, rec, served_rows: int, dims,
                     window_start: Optional[int] = None) -> None:
    """Emit the per-step stage events for one machine-step record.

    When ``window_start`` is given, the comm stages (request exchange,
    serve slice, feature comm) are *not* emitted — the engine emits those
    once per window via :func:`emit_window_comm_events` — otherwise the
    step is its own window and they are emitted here.
    """
    g = rec.gather
    k, s = rec.machine, rec.step
    dims_tuple = dims.as_tuple if hasattr(dims, "as_tuple") else tuple(dims)
    host_rows = g.cpu_rows + g.cached_rows + g.coalesced_rows
    trace.add(Stage.SAMPLE, k, s, candidate_edges=rec.candidate_edges)
    trace.add(Stage.LOCAL_SLICE, k, s, rows=host_rows + g.cache_insertions)
    trace.add(Stage.H2D, k, s, rows=host_rows + g.remote_rows)
    trace.add(Stage.GPU_GATHER, k, s, gpu_rows=g.gpu_rows,
              total_rows=g.total_rows)
    trace.add(Stage.TRAIN, k, s, flops=rec.flops(*dims_tuple))
    if window_start is None:
        remote = g.remote_rows + g.refresh_fetch_rows
        trace.add(Stage.REQUEST_EXCHANGE, k, s,
                  request_rows=remote, serve_rows=served_rows,
                  mfg_edges=rec.mfg_edges)
        trace.add(Stage.SERVE_SLICE, k, s, rows=served_rows)
        trace.add(Stage.FEATURE_COMM, k, s,
                  in_rows=remote, out_rows=served_rows)


def emit_window_comm_events(trace: EventTrace, window_start: int, machine: int,
                            request_rows: int, serve_rows: int,
                            mfg_edges: int = 0) -> List[StageEvent]:
    """Emit one machine's coalesced comm stages for a multi-step window.

    ``mfg_edges`` is the window total (derived cost models — e.g. the
    DistDGL baseline's remote-sampling RPC term — price it; the base model
    ignores it).  Returns the events just appended, so callers that price
    them immediately (the serving clock) need not know how many stages a
    comm window comprises.
    """
    before = len(trace.events)
    trace.add(Stage.REQUEST_EXCHANGE, machine, window_start,
              request_rows=request_rows, serve_rows=serve_rows,
              mfg_edges=mfg_edges)
    trace.add(Stage.SERVE_SLICE, machine, window_start, rows=serve_rows)
    trace.add(Stage.FEATURE_COMM, machine, window_start,
              in_rows=request_rows, out_rows=serve_rows)
    return trace.events[before:]


# ----------------------------------------------------------------------
# trace-shape comparison (the multiproc backend's parity oracle)
# ----------------------------------------------------------------------

def trace_shape(trace: EventTrace) -> dict:
    """Canonical structural summary of a trace, suitable for equality.

    Captures everything the simulator prices — engine name, machine/step
    counts, comm-window tiling, allreduce barriers, and every event's
    ``(stage, machine, step)`` key with its exact volumes — while ignoring
    event *emission order* (engines may interleave machines differently
    without changing the schedule).  Two traces with equal shapes simulate
    to identical epoch times under any cost model.
    """
    return {
        "engine": trace.engine,
        "num_machines": trace.num_machines,
        "num_steps": trace.num_steps,
        "windows": [tuple(w) for w in trace.windows],
        "allreduce_steps": list(trace.allreduce_steps),
        "machine_of_step": (None if trace.machine_of_step is None
                            else list(trace.machine_of_step)),
        "events": {
            (ev.stage.value, ev.machine, ev.step): dict(sorted(ev.volumes))
            for ev in trace.events
        },
    }


def trace_shape_diff(actual: EventTrace, expected: EventTrace) -> List[str]:
    """Human-readable differences between two traces' shapes (empty = equal).

    The multiproc parity tests diff a real backend's emitted trace against
    the in-process engine's (the simulator's input): same stages, same
    per-machine step assignment, same remote-row and byte volumes.
    """
    a, b = trace_shape(actual), trace_shape(expected)
    diffs: List[str] = []
    for fld in ("engine", "num_machines", "num_steps", "windows",
                "allreduce_steps", "machine_of_step"):
        if a[fld] != b[fld]:
            diffs.append(f"{fld}: {a[fld]!r} != {b[fld]!r}")
    ev_a, ev_b = a["events"], b["events"]
    for key in sorted(set(ev_b) - set(ev_a)):
        diffs.append(f"missing event {key}")
    for key in sorted(set(ev_a) - set(ev_b)):
        diffs.append(f"unexpected event {key}")
    for key in sorted(set(ev_a) & set(ev_b)):
        if ev_a[key] != ev_b[key]:
            diffs.append(f"event {key} volumes: {ev_a[key]!r} != {ev_b[key]!r}")
    return diffs


def assert_trace_shape_equal(actual: EventTrace, expected: EventTrace,
                             max_diffs: int = 20) -> None:
    """Assert two traces describe the same schedule; raises with a
    readable diff listing (capped at ``max_diffs`` lines) otherwise."""
    diffs = trace_shape_diff(actual, expected)
    if diffs:
        shown = diffs[:max_diffs]
        if len(diffs) > max_diffs:
            shown.append(f"... and {len(diffs) - max_diffs} more")
        raise AssertionError("trace shape mismatch:\n  " + "\n  ".join(shown))
