"""Comparison systems: the DistDGL-like baseline of Table 4."""

from repro.baselines.distdgl import DistDGL, DistDGLCostModel, DistDGLParams

__all__ = ["DistDGL", "DistDGLCostModel", "DistDGLParams"]
