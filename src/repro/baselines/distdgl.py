"""DistDGL-like baseline for the Table 4 comparison.

The paper compares SALIENT++ against DistDGL's public distributed GraphSAGE
example on identical hardware (8 single-GPU machines) and reports a 12.7x
gap.  The gap is architectural, and this baseline reproduces those
architectural choices rather than any constant:

* **Distributed graph structure** — DistDGL partitions the graph itself, so
  every sampling hop whose frontier crosses partitions is a synchronous RPC
  to remote sampling servers: per hop, an id round-trip plus adjacency
  shipping (~16 bytes per sampled edge), priced on the same network model.
* **No feature caching** — remote features (beyond the partition's halo) are
  fetched per minibatch, synchronously, through the KVStore.
* **No preparation pipeline** — sampling, feature fetch, copy, and training
  execute sequentially inside the training loop (PipelineMode.OFF).
* **Slower per-batch sampling path** — Python sampler workers + RPC
  serialization; modeled as a sampler-rate derating and a per-batch fixed
  overhead, calibrated so the single-machine gap to SALIENT's C++ sampler
  matches the ~2-4x reported in the SALIENT paper.

The functional layer (sampling distribution, training math) is identical to
SALIENT++'s, so accuracy is unaffected — only the execution schedule and
priced volumes differ.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.core.config import RunConfig
from repro.core.system import SalientPP
from repro.distributed.executor import StepRecord
from repro.graph.datasets import GraphDataset
from repro.pipeline.costmodel import CostModel, StageTimes
from repro.pipeline.simulator import PipelineMode


@dataclass(frozen=True)
class DistDGLParams:
    """Derating constants for the DistDGL execution path."""

    sampler_derate: float = 0.35       # Python/RPC sampler vs SALIENT's C++
    per_batch_overhead: float = 1.2e-3  # RPC round-trips, GIL, serialization
    bytes_per_remote_edge: float = 16.0  # shipped adjacency (src, dst ids)
    kvstore_derate: float = 0.5        # KVStore slicing vs fused slicing


class DistDGLCostModel(CostModel):
    """Cost model with DistDGL's remote-sampling and KVStore behaviour."""

    def __init__(self, *args, params: DistDGLParams = DistDGLParams(),
                 num_hops: int = 3, remote_frontier_fraction: float = 0.5,
                 **kwargs):
        super().__init__(*args, **kwargs)
        self.params = params
        self.num_hops = num_hops
        self.remote_frontier_fraction = remote_frontier_fraction

    def stage_times(self, rec: StepRecord, served_rows: int) -> StageTimes:
        base = super().stage_times(rec, served_rows)
        m = self.cluster.machine
        net = self.cluster.network
        p = self.params

        sample = (rec.candidate_edges / (m.sample_rate * p.sampler_derate)
                  + m.overhead_per_batch + p.per_batch_overhead)
        # Remote sampling RPCs: one id/adjacency round-trip per hop for the
        # frontier portion owned by other machines.
        remote_edges = rec.mfg_edges * self.remote_frontier_fraction
        rpc = (2 * self.num_hops * net.latency
               + remote_edges * p.bytes_per_remote_edge / net.bandwidth)

        return StageTimes(
            sample=sample,
            request_exchange=base.request_exchange + rpc,
            local_slice=base.local_slice / p.kvstore_derate,
            serve_slice=base.serve_slice / p.kvstore_derate,
            feature_comm=base.feature_comm,
            h2d=base.h2d,
            gpu_gather=base.gpu_gather,
            train=base.train,
        )

    def event_duration(self, ev) -> float:
        """Event-path pricing with the same deratings as :meth:`stage_times`
        (the engine-emitted trace must cost the same as the record replay)."""
        from repro.pipeline.events import Stage

        base = super().event_duration(ev)
        m = self.cluster.machine
        net = self.cluster.network
        p = self.params
        if ev.stage is Stage.SAMPLE:
            return (ev.volume("candidate_edges")
                    / (m.sample_rate * p.sampler_derate)
                    + m.overhead_per_batch + p.per_batch_overhead)
        if ev.stage in (Stage.LOCAL_SLICE, Stage.SERVE_SLICE):
            return base / p.kvstore_derate
        if ev.stage is Stage.REQUEST_EXCHANGE:
            remote_edges = ev.volume("mfg_edges") * self.remote_frontier_fraction
            rpc = (2 * self.num_hops * net.latency
                   + remote_edges * p.bytes_per_remote_edge / net.bandwidth)
            return base + rpc
        return base


class DistDGL(SalientPP):
    """DistDGL-like system: build like SALIENT++ but with no cache, no
    pipeline, and the DistDGL cost model."""

    @classmethod
    def build(cls, dataset: GraphDataset, config: RunConfig, *,
              params: DistDGLParams = DistDGLParams(), **kwargs) -> "DistDGL":
        config = replace(
            config,
            full_replication=False,
            replication_factor=0.0,
            gpu_fraction=0.0,
            vip_reorder=False,
            pipeline=PipelineMode.OFF,
        )
        system = super().build(dataset, config, **kwargs)
        system.__class__ = cls
        # Swap in the DistDGL pricing (same cluster and volumes).
        base = system.cost_model
        remote_frac = 1.0 - 1.0 / max(config.num_machines, 1)
        system.cost_model = DistDGLCostModel(
            base.cluster, base.bytes_per_row, base.dims, base.grad_nbytes,
            params=params,
            num_hops=len(config.resolve(dataset).fanouts),
            remote_frontier_fraction=min(remote_frac, 0.6),
        )
        return system
