"""Message-flow graphs (MFGs) for minibatch GNN computation.

An MFG is the output of L-hop node-wise neighborhood sampling for one
minibatch: the set of vertices involved (``n_id``, seeds first) and one
bipartite *block* per hop.  Block ``h`` connects sampled hop-``h`` sources to
their hop-``h-1`` destinations; the GNN consumes blocks outermost-first
(block ``L-1`` feeds model layer 1).

The hop sets are cumulative — ``S_0 = seeds``, ``S_h = S_{h-1} ∪ sampled
neighbors`` — and ``n_id`` is laid out so each ``S_h`` is a prefix.  A layer
therefore reads its destination representations as a prefix of its source
representations (how GraphSAGE-style UPD accesses "self" vectors without
explicit self-loop edges).

Edges inside a block are grouped by destination (``dst_ptr`` is a CSR-style
offset array over destinations), so mean/sum aggregation is a single
``reduceat`` over contiguous segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass
class MFGBlock:
    """One hop's bipartite sampling block.

    Attributes
    ----------
    dst_ptr:
        ``(num_dst + 1,)`` offsets; sampled in-neighbors of destination ``i``
        are ``src_index[dst_ptr[i]:dst_ptr[i+1]]``.
    src_index:
        Local indices (into the first ``num_src`` entries of the MFG's
        ``n_id``) of sampled sources, grouped by destination.
    num_src / num_dst:
        Sizes of the source and destination vertex sets; destinations are the
        first ``num_dst`` sources.
    """

    dst_ptr: np.ndarray
    src_index: np.ndarray
    num_src: int
    num_dst: int

    def __post_init__(self):
        self.dst_ptr = np.asarray(self.dst_ptr, dtype=np.int64)
        self.src_index = np.asarray(self.src_index, dtype=np.int64)
        if len(self.dst_ptr) != self.num_dst + 1:
            raise ValueError("dst_ptr length must be num_dst + 1")
        if self.dst_ptr[-1] != len(self.src_index):
            raise ValueError("dst_ptr[-1] must equal len(src_index)")
        if self.num_dst > self.num_src:
            raise ValueError("destinations must be a subset (prefix) of sources")
        if len(self.src_index) and (
            self.src_index.min() < 0 or self.src_index.max() >= self.num_src
        ):
            raise ValueError("src_index out of range")

    @property
    def num_edges(self) -> int:
        return len(self.src_index)

    def neighbor_counts(self) -> np.ndarray:
        """Number of sampled neighbors per destination."""
        return np.diff(self.dst_ptr)


@dataclass
class MFG:
    """A sampled L-hop neighborhood for one minibatch.

    Attributes
    ----------
    n_id:
        Global vertex ids of all involved vertices; ``n_id[:len(seeds)]`` are
        the seeds and each hop set ``S_h`` is a prefix.
    blocks:
        ``blocks[h-1]`` is hop ``h`` (``blocks[0]`` has the seeds as
        destinations).  The GNN iterates them in reverse.
    seeds:
        The minibatch vertices (global ids).
    """

    n_id: np.ndarray
    blocks: List[MFGBlock]
    seeds: np.ndarray

    @property
    def num_vertices(self) -> int:
        return len(self.n_id)

    @property
    def num_hops(self) -> int:
        return len(self.blocks)

    @property
    def num_edges(self) -> int:
        return int(sum(b.num_edges for b in self.blocks))

    @property
    def batch_size(self) -> int:
        return len(self.seeds)

    def hop_sizes(self) -> List[int]:
        """|S_h| for h = 0..L (cumulative hop-set sizes)."""
        sizes = [self.batch_size]
        sizes.extend(b.num_src for b in self.blocks)
        return sizes

    def validate(self) -> None:
        """Structural consistency checks (used by tests)."""
        prev_dst = self.batch_size
        for h, blk in enumerate(self.blocks):
            if blk.num_dst != prev_dst:
                raise AssertionError(
                    f"block {h}: num_dst {blk.num_dst} != previous hop size {prev_dst}"
                )
            if blk.num_src < blk.num_dst:
                raise AssertionError(f"block {h}: src smaller than dst")
            prev_dst = blk.num_src
        if self.blocks and self.blocks[-1].num_src != len(self.n_id):
            raise AssertionError("outermost block src set must equal n_id")
