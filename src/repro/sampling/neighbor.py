"""Vectorized node-wise neighborhood sampling.

This is the Python counterpart of SALIENT's C++ ``fast_sampler``: for each
destination vertex, sample at most ``fanout`` of its neighbors uniformly
without replacement, independently across vertices and hops — exactly the
random process analyzed by the paper's Proposition 1 (so the analytic VIP
model and this sampler agree by construction, which the Monte-Carlo tests
verify).

The without-replacement draw uses the random-key trick: assign each candidate
edge an i.i.d. uniform key and keep the ``fanout`` smallest keys per
destination.  One global ``lexsort`` over the frontier's edges replaces any
per-vertex Python loop.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sampling.mfg import MFG, MFGBlock
from repro.utils.rng import SeedLike, as_generator, derive_seed


class SampleArena:
    """Reusable scratch buffers for :func:`sample_neighbors`.

    The per-call intermediates — candidate segment ids, within-segment
    offsets, random keys, candidate edge positions — are the dominant
    allocations on the per-batch sampling path (each is one entry per
    *candidate* edge of the frontier, typically 10-100x the batch size).
    An arena keeps one growable buffer per role and hands out prefix views,
    so a long-lived :class:`NeighborSampler` allocates these once at the
    high-water mark instead of once per hop per minibatch.

    Outputs (``dst_ptr`` and the sampled neighbor ids) are always freshly
    allocated — they outlive the call inside :class:`MFGBlock`\\ s.  The
    sampled values and the RNG stream are bit-identical with or without an
    arena.
    """

    def __init__(self):
        self._i64: Dict[str, np.ndarray] = {}
        self._f64: Dict[str, np.ndarray] = {}
        self._ramp = np.empty(0, dtype=np.int64)

    @staticmethod
    def _grown(buf: Optional[np.ndarray], n: int, dtype) -> np.ndarray:
        if buf is None or len(buf) < n:
            cap = max(n, 2 * len(buf) if buf is not None else n)
            return np.empty(cap, dtype=dtype)
        return buf

    def i64(self, name: str, n: int) -> np.ndarray:
        """A length-``n`` int64 view (contents unspecified)."""
        buf = self._grown(self._i64.get(name), n, np.int64)
        self._i64[name] = buf
        return buf[:n]

    def f64(self, name: str, n: int) -> np.ndarray:
        """A length-``n`` float64 view (contents unspecified)."""
        buf = self._grown(self._f64.get(name), n, np.float64)
        self._f64[name] = buf
        return buf[:n]

    def ramp(self, n: int) -> np.ndarray:
        """Read-only view of ``arange(n)`` (grown once, shared)."""
        if len(self._ramp) < n:
            self._ramp = np.arange(max(n, 2 * len(self._ramp)), dtype=np.int64)
        return self._ramp[:n]


def _segment_ids(arena: SampleArena, offsets: np.ndarray, total: int) -> np.ndarray:
    """``repeat(arange(len(offsets) - 1), diff(offsets))`` without the
    repeat allocation: ones scattered at segment boundaries, cumulative-
    summed in place (duplicate boundaries from empty segments accumulate
    via ``np.add.at``)."""
    seg = arena.i64("seg", total)
    seg[:] = 0
    bounds = offsets[1:-1]
    np.add.at(seg, bounds[bounds < total], 1)
    np.cumsum(seg, out=seg)
    return seg


def sample_neighbors(
    graph: CSRGraph,
    targets: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
    *,
    arena: Optional[SampleArena] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ≤ ``fanout`` neighbors per target, uniformly without replacement.

    Parameters
    ----------
    graph:
        Any object implementing the vectorized adjacency protocol
        (``degrees``, ``row_starts``, ``take_edges``) — a
        :class:`CSRGraph` or a streaming
        :class:`~repro.graph.mutable.MutableGraph`.  The RNG stream
        depends only on the effective adjacency, so an empty overlay
        samples bit-identically to its base.
    fanout:
        Per-vertex cap; ``-1`` (or any negative) keeps all neighbors (full
        neighborhood expansion).
    arena:
        Optional :class:`SampleArena` providing reusable scratch buffers
        (a private one is created per call otherwise).  Results and RNG
        consumption are identical either way.

    Returns
    -------
    (dst_ptr, src_global):
        CSR-style offsets over ``targets`` and the sampled global neighbor
        ids, grouped per target.
    """
    if arena is None:
        arena = SampleArena()
    targets = np.asarray(targets, dtype=np.int64)
    deg = graph.degrees[targets]
    starts = graph.row_starts(targets)

    if fanout < 0:
        take = deg
    else:
        take = np.minimum(deg, fanout)
    dst_ptr = np.zeros(len(targets) + 1, dtype=np.int64)
    np.cumsum(take, out=dst_ptr[1:])
    total = int(dst_ptr[-1])
    if total == 0:
        return dst_ptr, np.empty(0, dtype=np.int64)

    # Gather candidate edge positions for the whole frontier.
    cand_total = int(deg.sum())
    cand_starts = np.zeros(len(targets) + 1, dtype=np.int64)
    np.cumsum(deg, out=cand_starts[1:])
    seg = _segment_ids(arena, cand_starts, cand_total)
    # Position of each candidate within graph.indices:
    # edge_pos = starts[seg] + (ramp - cand_starts[seg]).
    rel = arena.i64("rel", cand_total)
    np.take(cand_starts, seg, out=rel)
    np.subtract(arena.ramp(cand_total), rel, out=rel)
    edge_pos = arena.i64("edge_pos", cand_total)
    np.take(starts, seg, out=edge_pos)
    np.add(edge_pos, rel, out=edge_pos)

    if fanout < 0 or np.all(take == deg):
        return dst_ptr, graph.take_edges(edge_pos)

    # Random-key selection: per segment, keep the `take` smallest keys.
    # Combining the segment id and the key into one float (integer part =
    # segment, fraction = key) makes this a single argsort, ~2-3x faster than
    # lexsort; 52 mantissa bits leave ample randomness for any frontier size.
    keys = arena.f64("keys", cand_total)
    rng.random(out=keys)
    np.add(keys, seg, out=keys)
    order = np.argsort(keys)
    out_rel = np.arange(total, dtype=np.int64) - np.repeat(dst_ptr[:-1], take)
    pick = order[np.repeat(cand_starts[:-1], take) + out_rel]
    return dst_ptr, graph.take_edges(edge_pos[pick])


class NeighborSampler:
    """L-hop node-wise sampler producing :class:`MFG` minibatches.

    Parameters
    ----------
    graph:
        The (typically undirected) graph to sample from.
    fanouts:
        Per-hop fanouts, hop 1 first — e.g. ``(15, 10, 5)`` samples 15
        neighbors of each seed, then 10 of each hop-1 vertex, then 5.
    seed:
        Default randomness; :meth:`sample` also accepts an explicit ``rng``
        so distributed machines can run independent streams.
    """

    def __init__(self, graph: CSRGraph, fanouts: Sequence[int], seed: SeedLike = None):
        if len(fanouts) == 0:
            raise ValueError("fanouts must be non-empty")
        if any(f == 0 for f in fanouts):
            raise ValueError("fanouts must be non-zero (use -1 for full expansion)")
        self.graph = graph
        self.fanouts = tuple(int(f) for f in fanouts)
        self._rng = as_generator(seed)
        # Stamped membership table: avoids an O(N) clear per minibatch.
        self._stamp = np.zeros(graph.num_vertices, dtype=np.int64)
        self._local = np.zeros(graph.num_vertices, dtype=np.int64)
        self._epoch = 0
        # Scratch reused across every hop of every minibatch this sampler
        # produces (the seg/rel/key arrays of sample_neighbors).
        self._arena = SampleArena()

    @property
    def num_hops(self) -> int:
        return len(self.fanouts)

    def rng_state(self) -> str:
        """The default stream's cursor as a ``repr`` string (PCG64 state
        holds 128-bit ints, so it travels as text — restore parses it with
        ``ast.literal_eval``).  Together with :meth:`set_rng_state` this is
        the replay hook for checkpoint/recovery: capturing at an epoch
        boundary and restoring later reproduces the same draws."""
        return repr(self._rng.bit_generator.state)

    def set_rng_state(self, state: str) -> None:
        """Restore a :meth:`rng_state` cursor and reset the stamped
        membership tables.  The stamp/local tables are scratch (their
        contents never influence which vertices are drawn, only the dedup
        bookkeeping within one minibatch), but entries written by an
        aborted partial epoch would collide with replayed stamp values —
        zeroing them alongside the epoch counter is always valid."""
        import ast

        self._rng.bit_generator.state = ast.literal_eval(state)
        self._stamp[:] = 0
        self._local[:] = 0
        self._epoch = 0

    def sample(self, seeds: np.ndarray, rng: Optional[np.random.Generator] = None) -> MFG:
        """Sample the L-hop expanded neighborhood of ``seeds``."""
        rng = self._rng if rng is None else rng
        n = self.graph.num_vertices
        if n > len(self._stamp):
            # A streaming graph (repro.graph.mutable.MutableGraph) can grow
            # between minibatches; extend the membership tables to match.
            grown = np.zeros(n, dtype=np.int64)
            grown[:len(self._stamp)] = self._stamp
            self._stamp = grown
            grown = np.zeros(n, dtype=np.int64)
            grown[:len(self._local)] = self._local
            self._local = grown
        seeds = np.asarray(seeds, dtype=np.int64)
        if len(np.unique(seeds)) != len(seeds):
            raise ValueError("seeds must be unique")

        self._epoch += 1
        stamp, local, epoch = self._stamp, self._local, self._epoch

        n_id = [seeds]
        count = len(seeds)
        stamp[seeds] = epoch
        local[seeds] = np.arange(count, dtype=np.int64)

        frontier = seeds  # S_{h-1}: all vertices known so far are targets
        blocks = []
        for fanout in self.fanouts:
            dst_ptr, src_global = sample_neighbors(self.graph, frontier, fanout,
                                                   rng, arena=self._arena)
            # Register newly seen vertices (sorted for determinism).
            fresh_mask = stamp[src_global] != epoch
            fresh = np.unique(src_global[fresh_mask])
            stamp[fresh] = epoch
            local[fresh] = count + np.arange(len(fresh), dtype=np.int64)
            count += len(fresh)
            n_id.append(fresh)

            blocks.append(MFGBlock(
                dst_ptr=dst_ptr,
                src_index=local[src_global],
                num_src=count,
                num_dst=len(frontier),
            ))
            # Next hop expands every vertex seen so far (cumulative sets);
            # concatenating the per-hop fresh lists preserves prefix order.
            frontier = np.concatenate(n_id)

        return MFG(n_id=np.concatenate(n_id), blocks=blocks, seeds=seeds)

    def batches(
        self,
        ids: np.ndarray,
        batch_size: int,
        *,
        shuffle: bool = True,
        drop_last: bool = False,
        epoch: int = 0,
        seed: SeedLike = None,
    ) -> Iterator[MFG]:
        """Iterate MFGs over ``ids`` in minibatches.

        The shuffle order is derived from ``(seed, epoch)`` so epochs are
        reproducible and distributed workers can coordinate steps.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        order = ids
        if shuffle:
            shuffle_rng = as_generator(derive_seed(seed, "shuffle", epoch))
            order = ids[shuffle_rng.permutation(len(ids))]
        n_full = len(order) // batch_size
        end = n_full * batch_size if drop_last else len(order)
        for start in range(0, end, batch_size):
            batch = order[start:start + batch_size]
            if len(batch) == 0:
                break
            yield self.sample(batch)


def num_batches(num_ids: int, batch_size: int, drop_last: bool = False) -> int:
    """Number of minibatches `batches()` will yield."""
    if drop_last:
        return num_ids // batch_size
    return (num_ids + batch_size - 1) // batch_size
