"""Node-wise neighborhood sampling and message-flow graphs."""

from repro.sampling.mfg import MFG, MFGBlock
from repro.sampling.neighbor import NeighborSampler, num_batches, sample_neighbors

__all__ = ["MFG", "MFGBlock", "NeighborSampler", "num_batches", "sample_neighbors"]
