"""Node-wise neighborhood sampling and message-flow graphs (paper §2.2).

The sampler implements exactly the random process analyzed by §3.1 /
Proposition 1 — at most ``f_h`` neighbors per destination, uniformly
without replacement, independently across vertices and hops — so the
analytic VIP model and the executor's measured workloads agree by
construction.
"""

from repro.sampling.mfg import MFG, MFGBlock
from repro.sampling.neighbor import NeighborSampler, num_batches, sample_neighbors

__all__ = ["MFG", "MFGBlock", "NeighborSampler", "num_batches", "sample_neighbors"]
