"""Graph substrate: CSR storage, synthetic generators, benchmark datasets."""

from repro.graph.csr import CSRGraph
from repro.graph.mutable import DeltaRecord, EdgeBatch, MutableGraph
from repro.graph.generators import (
    chung_lu,
    drifting_training_sets,
    edge_stream,
    erdos_renyi,
    pareto_degree_weights,
    power_law_community_graph,
    rmat,
    stochastic_block_model,
    streaming_request_stream,
)
from repro.graph.datasets import (
    DATASET_REGISTRY,
    GraphDataset,
    load_dataset,
    make_features,
    make_mag240c_mini,
    make_papers_mini,
    make_products_mini,
    make_splits,
    make_synthetic_dataset,
    make_tiny,
)

__all__ = [
    "CSRGraph",
    "DeltaRecord",
    "EdgeBatch",
    "MutableGraph",
    "chung_lu",
    "edge_stream",
    "erdos_renyi",
    "pareto_degree_weights",
    "drifting_training_sets",
    "power_law_community_graph",
    "streaming_request_stream",
    "rmat",
    "stochastic_block_model",
    "DATASET_REGISTRY",
    "GraphDataset",
    "load_dataset",
    "make_features",
    "make_mag240c_mini",
    "make_papers_mini",
    "make_products_mini",
    "make_splits",
    "make_synthetic_dataset",
    "make_tiny",
]
