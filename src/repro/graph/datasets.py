"""Benchmark datasets: scaled-down stand-ins for the paper's OGB graphs.

The paper's Table 2 datasets and their stand-ins (see docs/architecture.md,
"Datasets and calibration", for the substitution rationale):

======================  ==========================  ============================
Paper dataset           Size (V / E / D / train)    Stand-in (V / E~ / D / train)
======================  ==========================  ============================
ogbn-products           2.4M / 123M / 100 / 8.2%    products-mini  24K / ~1.2M / 50 / 8%
ogbn-papers100M         111M / 3.2B / 128 / 1.1%    papers-mini    120K / ~3.8M / 64 / 10%
lsc-mag240 (papers)     121M / 2.6B / 768 / 0.9%    mag240c-mini   64K / ~1.8M / 384 / 10%
======================  ==========================  ============================

The stand-ins keep: the power-law degree skew; community structure (so a
METIS-like partitioner finds a meaningful cut); the *relative* feature
dimensionality (mag240c's features are 6x wider than papers', which is what
makes its communication throughput-bound — Figure 4 discussion); and labeled
fractions large enough to give the training pipeline a realistic number of
minibatch steps per epoch.

Features are class-conditional Gaussians smoothed over the graph (one round
of mean aggregation), so message passing carries real signal and the accuracy
experiments in §5.3 are meaningful rather than decorative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.graph.csr import CSRGraph
from repro.graph.generators import power_law_community_graph
from repro.utils.rng import SeedLike, as_generator, spawn_generators


@dataclass
class GraphDataset:
    """A node-classification dataset over an undirected graph.

    Attributes
    ----------
    graph:
        Undirected :class:`CSRGraph` (each edge stored in both directions).
    features:
        ``float32`` array of shape ``(num_vertices, feature_dim)``.
    labels:
        ``int64`` class ids per vertex.
    train_idx / val_idx / test_idx:
        Disjoint vertex-id arrays; remaining vertices are unlabeled context.
    community:
        Ground-truth generator community per vertex (``None`` for graphs
        without planted structure); used only for diagnostics.
    """

    name: str
    graph: CSRGraph
    features: np.ndarray
    labels: np.ndarray
    train_idx: np.ndarray
    val_idx: np.ndarray
    test_idx: np.ndarray
    num_classes: int
    community: Optional[np.ndarray] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        n = self.graph.num_vertices
        if self.features.shape[0] != n:
            raise ValueError(f"features rows ({self.features.shape[0]}) != vertices ({n})")
        if self.labels.shape != (n,):
            raise ValueError(f"labels must have shape ({n},), got {self.labels.shape}")
        for nm, idx in (("train_idx", self.train_idx), ("val_idx", self.val_idx),
                        ("test_idx", self.test_idx)):
            idx = np.asarray(idx)
            if idx.size and (idx.min() < 0 or idx.max() >= n):
                raise ValueError(f"{nm} out of range")
        splits = np.concatenate([self.train_idx, self.val_idx, self.test_idx])
        if len(np.unique(splits)) != len(splits):
            raise ValueError("train/val/test splits must be disjoint")

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def feature_dim(self) -> int:
        return int(self.features.shape[1])

    @property
    def feature_bytes_per_vertex(self) -> int:
        return int(self.features.shape[1] * self.features.itemsize)

    def split_role(self) -> np.ndarray:
        """Per-vertex role code: 0=unlabeled, 1=train, 2=val, 3=test."""
        role = np.zeros(self.num_vertices, dtype=np.int8)
        role[self.train_idx] = 1
        role[self.val_idx] = 2
        role[self.test_idx] = 3
        return role

    def summary_row(self):
        """Row for the Table 2 reproduction."""
        return [
            self.name,
            self.num_vertices,
            self.graph.num_edges // 2,
            self.feature_dim,
            f"{len(self.train_idx)} / {len(self.val_idx)} / {len(self.test_idx)}",
        ]

    def __repr__(self) -> str:
        return (f"GraphDataset({self.name!r}, V={self.num_vertices}, "
                f"E={self.graph.num_edges // 2}, D={self.feature_dim}, "
                f"classes={self.num_classes})")


def make_features(
    graph: CSRGraph,
    labels: np.ndarray,
    feature_dim: int,
    num_classes: int,
    seed: SeedLike = None,
    *,
    class_separation: float = 1.0,
    smoothing: float = 0.5,
    noise: float = 1.0,
) -> np.ndarray:
    """Class-conditional Gaussian features with one hop of graph smoothing.

    ``x_v = (1 - smoothing) * (mu[y_v] + eps_v) + smoothing * mean_{u~v} x_u``
    where ``mu`` are random class centroids with pairwise distance controlled
    by ``class_separation``.  Smoothing gives neighbors correlated features,
    which is the structural signal GNN aggregation exploits.
    """
    rng = as_generator(seed)
    n = graph.num_vertices
    centroids = rng.normal(0.0, class_separation, size=(num_classes, feature_dim))
    x = centroids[labels] + rng.normal(0.0, noise, size=(n, feature_dim))
    if smoothing > 0 and graph.num_edges:
        adj = graph.to_scipy(dtype=np.float32)
        inv_deg = 1.0 / np.maximum(graph.degrees, 1)
        norm_adj = sp.diags(inv_deg.astype(np.float32)) @ adj
        x = (1.0 - smoothing) * x + smoothing * (norm_adj @ x)
    return np.ascontiguousarray(x, dtype=np.float32)


def make_splits(
    num_vertices: int,
    train_frac: float,
    val_frac: float,
    test_frac: float,
    seed: SeedLike = None,
):
    """Random disjoint train/val/test vertex splits."""
    total = train_frac + val_frac + test_frac
    if total > 1.0 + 1e-9:
        raise ValueError(f"split fractions sum to {total} > 1")
    rng = as_generator(seed)
    perm = rng.permutation(num_vertices)
    n_train = int(round(num_vertices * train_frac))
    n_val = int(round(num_vertices * val_frac))
    n_test = int(round(num_vertices * test_frac))
    train = np.sort(perm[:n_train])
    val = np.sort(perm[n_train:n_train + n_val])
    test = np.sort(perm[n_train + n_val:n_train + n_val + n_test])
    return train.astype(np.int64), val.astype(np.int64), test.astype(np.int64)


def make_synthetic_dataset(
    name: str,
    num_vertices: int,
    avg_degree: float,
    feature_dim: int,
    num_classes: int,
    *,
    num_communities: int = 64,
    intra_fraction: float = 0.9,
    label_noise: float = 0.1,
    train_frac: float = 0.1,
    val_frac: float = 0.02,
    test_frac: float = 0.05,
    power: float = 2.5,
    seed: SeedLike = 0,
) -> GraphDataset:
    """Generate a full node-classification dataset with planted structure.

    Labels follow the planted community (mod ``num_classes``) with
    ``label_noise`` random flips, so both graph structure and features are
    predictive and minibatch GNN training converges on realistic curves.
    """
    rng_graph, rng_label, rng_feat, rng_split = spawn_generators(seed, 4)
    graph, community = power_law_community_graph(
        num_vertices, avg_degree,
        num_communities=num_communities,
        intra_fraction=intra_fraction,
        power=power,
        seed=rng_graph,
    )
    labels = (community % num_classes).astype(np.int64)
    flip = rng_label.random(num_vertices) < label_noise
    labels[flip] = rng_label.integers(0, num_classes, size=int(flip.sum()))
    features = make_features(graph, labels, feature_dim, num_classes, seed=rng_feat)
    train, val, test = make_splits(num_vertices, train_frac, val_frac, test_frac, seed=rng_split)
    return GraphDataset(
        name=name,
        graph=graph,
        features=features,
        labels=labels,
        train_idx=train,
        val_idx=val,
        test_idx=test,
        num_classes=num_classes,
        community=community,
        metadata={
            "avg_degree": avg_degree,
            "num_communities": num_communities,
            "intra_fraction": intra_fraction,
            "seed": seed,
        },
    )


def make_products_mini(seed: SeedLike = 0, scale: float = 1.0) -> GraphDataset:
    """Stand-in for ogbn-products: dense co-purchase-like graph.

    The ``default_experiment`` metadata mirrors Table 3 of the paper scaled
    ~1000x: fanout (5,4,3) for (15,10,5), batch 64 per machine for 1024.
    """
    ds = make_synthetic_dataset(
        "products-mini",
        num_vertices=int(24_000 * scale),
        avg_degree=25.0,
        power=1.9,
        feature_dim=50,
        num_classes=16,
        num_communities=40,
        train_frac=0.10,
        val_frac=0.02,
        test_frac=0.30,
        seed=seed,
    )
    ds.metadata["default_experiment"] = {
        "fanouts": (5, 4, 3), "batch_size": 64, "hidden_dim": 64,
        "num_layers": 3, "inference_fanouts": (7, 7, 7), "num_parts": 4,
        "replication_factor": 0.16,
    }
    return ds


def make_papers_mini(seed: SeedLike = 0, scale: float = 1.0) -> GraphDataset:
    """Stand-in for ogbn-papers100M: large sparse citation-like graph with
    heavy-tailed degrees (power-law exponent 1.8), the main benchmark of the
    paper's Table 1 / Figures 2, 6, 7, 8, 9."""
    ds = make_synthetic_dataset(
        "papers-mini",
        num_vertices=int(120_000 * scale),
        avg_degree=16.0,
        power=1.8,
        feature_dim=64,
        num_classes=32,
        num_communities=96,
        train_frac=0.08,
        val_frac=0.02,
        test_frac=0.02,
        seed=seed,
    )
    ds.metadata["default_experiment"] = {
        "fanouts": (5, 4, 3), "batch_size": 64, "hidden_dim": 64,
        "num_layers": 3, "inference_fanouts": (7, 7, 7), "num_parts": 8,
        "replication_factor": 0.32,
    }
    return ds


def make_mag240c_mini(seed: SeedLike = 0, scale: float = 1.0) -> GraphDataset:
    """Stand-in for the mag240c papers-to-papers subgraph: 6x wider features
    than papers (768 vs 128 in the paper; 384 vs 64 here), which is what makes
    its remote-feature communication throughput-bound (Figure 4 discussion).

    2-layer architecture with fanout (8,5), the scaled analog of (25,15)."""
    ds = make_synthetic_dataset(
        "mag240c-mini",
        num_vertices=int(64_000 * scale),
        avg_degree=14.0,
        power=1.8,
        feature_dim=384,
        num_classes=32,
        num_communities=64,
        # Weaker community structure than papers/products: the real mag240c
        # citation graph yields markedly worse 16-way cuts than co-purchase
        # graphs, which is what makes its remote-feature traffic dominant.
        intra_fraction=0.75,
        # Train fraction is inflated (the real mag240c labels ~0.9% of
        # vertices) so 16-machine runs still execute enough minibatch steps
        # per epoch for pipeline behaviour to be observable at mini scale.
        train_frac=0.20,
        val_frac=0.02,
        test_frac=0.02,
        seed=seed,
    )
    ds.metadata["default_experiment"] = {
        "fanouts": (8, 5), "batch_size": 64, "hidden_dim": 128,
        "num_layers": 2, "inference_fanouts": (8, 5), "num_parts": 16,
        "replication_factor": 0.32,
    }
    return ds


def make_tiny(seed: SeedLike = 0, num_vertices: int = 400) -> GraphDataset:
    """A small dataset for tests and the quickstart example."""
    return make_synthetic_dataset(
        "tiny",
        num_vertices=num_vertices,
        avg_degree=8.0,
        feature_dim=16,
        num_classes=4,
        num_communities=8,
        train_frac=0.3,
        val_frac=0.1,
        test_frac=0.2,
        seed=seed,
    )


DATASET_REGISTRY: Dict[str, Callable[..., GraphDataset]] = {
    "products-mini": make_products_mini,
    "papers-mini": make_papers_mini,
    "mag240c-mini": make_mag240c_mini,
    "tiny": make_tiny,
}


def load_dataset(name: str, seed: SeedLike = 0, **kwargs) -> GraphDataset:
    """Load a registered dataset by name (deterministic for a given seed)."""
    try:
        factory = DATASET_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_REGISTRY)}"
        ) from None
    return factory(seed=seed, **kwargs)
