"""Immutable compressed-sparse-row (CSR) graph.

The CSR layout is the workhorse of the whole system: the neighborhood sampler
walks ``indptr``/``indices`` directly, VIP analysis converts the structure to
``scipy.sparse`` transition matrices, and the partitioner coarsens it level by
level.  Graphs are immutable after construction; all transformations return
new instances.

Vertex ids are ``0..num_vertices-1``.  ``indices[indptr[v]:indptr[v+1]]`` are
the *out*-neighbors of ``v``; for undirected graphs each edge appears in both
directions (as in OGB preprocessing — see Table 2 of the paper, "edge counts
reflect the graph after making it undirected").
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np
import scipy.sparse as sp


class CSRGraph:
    """A directed graph in CSR form (use :meth:`to_undirected` to symmetrize).

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``num_vertices + 1``; monotonically
        non-decreasing, ``indptr[0] == 0``, ``indptr[-1] == num_edges``.
    indices:
        Flat neighbor array of length ``num_edges``.
    check:
        Validate structural invariants (O(V+E)); disable only on hot paths
        that construct graphs from already-validated parts.
    """

    __slots__ = ("indptr", "indices", "version", "_degrees", "_is_sorted",
                 "_is_undirected", "_transition_table")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, *, check: bool = True):
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        #: Structure-version token.  0 for the lifetime of a well-behaved
        #: (immutable) graph; anything that mutates the arrays in place
        #: must call :meth:`bump_version` so per-graph caches (degrees,
        #: the VIP :class:`~repro.vip.analytic.TransitionTable`) can
        #: detect staleness instead of silently serving old structure.
        self.version = 0
        self._degrees: Optional[np.ndarray] = None
        self._is_sorted: Optional[bool] = None
        self._is_undirected: Optional[bool] = None
        #: Lazily attached per-graph cache of Proposition-1 transition
        #: probabilities and hot-path scratch buffers — owned and populated
        #: by :func:`repro.vip.analytic.transition_table`.  Lives on the
        #: graph so its lifetime (and validity: graphs are immutable)
        #: exactly matches the structure it caches.
        self._transition_table = None
        if check:
            self._validate()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        src: Iterable[int],
        dst: Iterable[int],
        num_vertices: Optional[int] = None,
        *,
        dedup: bool = False,
        sort_neighbors: bool = True,
    ) -> "CSRGraph":
        """Build a graph from parallel ``src``/``dst`` arrays.

        Parameters
        ----------
        num_vertices:
            Total vertex count; inferred as ``max(src, dst) + 1`` if omitted.
        dedup:
            Drop duplicate ``(src, dst)`` pairs.
        sort_neighbors:
            Sort each adjacency list (required by some downstream consumers;
            cheap relative to the counting sort).
        """
        src = np.asarray(src, dtype=np.int64).ravel()
        dst = np.asarray(dst, dtype=np.int64).ravel()
        if src.shape != dst.shape:
            raise ValueError(f"src and dst must have equal length, got {src.size} vs {dst.size}")
        if num_vertices is None:
            num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
        if src.size and (src.min() < 0 or dst.min() < 0 or
                         src.max() >= num_vertices or dst.max() >= num_vertices):
            raise ValueError("edge endpoints out of range")

        order = np.lexsort((dst, src)) if (sort_neighbors or dedup) else np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        if dedup and src.size:
            keep = np.empty(src.size, dtype=bool)
            keep[0] = True
            np.not_equal(src[1:], src[:-1], out=keep[1:])
            keep[1:] |= dst[1:] != dst[:-1]
            src, dst = src[keep], dst[keep]
        counts = np.bincount(src, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, dst, check=False)

    @classmethod
    def from_scipy(cls, mat: sp.spmatrix) -> "CSRGraph":
        """Build from any scipy sparse matrix (pattern only; values ignored)."""
        csr = mat.tocsr()
        if csr.shape[0] != csr.shape[1]:
            raise ValueError(f"adjacency matrix must be square, got {csr.shape}")
        return cls(csr.indptr.astype(np.int64), csr.indices.astype(np.int64), check=False)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of directed adjacency entries (2x edge count if undirected)."""
        return len(self.indices)

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex (cached)."""
        if self._degrees is None:
            self._degrees = np.diff(self.indptr)
        return self._degrees

    @property
    def max_degree(self) -> int:
        return int(self.degrees.max(initial=0))

    @property
    def avg_degree(self) -> float:
        return self.num_edges / max(self.num_vertices, 1)

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbors of ``v`` (a view into ``indices``; do not mutate)."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def bump_version(self) -> int:
        """Declare an in-place structural change: increment :attr:`version`
        and drop every derived per-graph cache (degrees, sortedness,
        symmetry, the VIP transition table).  CSR graphs are immutable by
        convention, so ordinary code never calls this; it exists so the
        rare in-place mutator cannot leave stale caches behind."""
        self.version += 1
        self._degrees = None
        self._is_sorted = None
        self._is_undirected = None
        self._transition_table = None
        return self.version

    # -- vectorized adjacency protocol ---------------------------------
    # (shared with repro.graph.mutable.MutableGraph, which reads through
    # its overlay; the sampler targets this protocol, not raw arrays)
    def row_starts(self, targets: np.ndarray) -> np.ndarray:
        """Start position of each target's adjacency row in the flat
        edge pool (here simply ``indptr[targets]``)."""
        return self.indptr[targets]

    def take_edges(self, positions: np.ndarray) -> np.ndarray:
        """Gather neighbor ids at flat edge-pool ``positions``."""
        return self.indices[positions]

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def reverse(self) -> "CSRGraph":
        """Transpose: edge (u, v) becomes (v, u)."""
        src, dst = self.edges()
        return CSRGraph.from_edges(dst, src, self.num_vertices)

    def to_undirected(self, *, remove_self_loops: bool = False) -> "CSRGraph":
        """Symmetrize: keep each (u, v) and add (v, u); deduplicate.

        Mirrors the OGB preprocessing used by the paper ("all graphs were
        made undirected").
        """
        src, dst = self.edges()
        if remove_self_loops:
            keep = src != dst
            src, dst = src[keep], dst[keep]
        all_src = np.concatenate([src, dst])
        all_dst = np.concatenate([dst, src])
        return CSRGraph.from_edges(all_src, all_dst, self.num_vertices, dedup=True)

    def remove_self_loops(self) -> "CSRGraph":
        src, dst = self.edges()
        keep = src != dst
        return CSRGraph.from_edges(src[keep], dst[keep], self.num_vertices)

    def relabel(self, new_of_old: np.ndarray) -> "CSRGraph":
        """Apply a vertex permutation: vertex ``v`` becomes ``new_of_old[v]``.

        Used by the partition-contiguous + VIP reordering (paper §4.1).
        """
        new_of_old = np.asarray(new_of_old, dtype=np.int64)
        if new_of_old.shape != (self.num_vertices,):
            raise ValueError("new_of_old must have one entry per vertex")
        if np.bincount(new_of_old, minlength=self.num_vertices).max(initial=1) != 1:
            raise ValueError("new_of_old must be a permutation")
        src, dst = self.edges()
        return CSRGraph.from_edges(new_of_old[src], new_of_old[dst], self.num_vertices)

    def induced_subgraph(self, vertices: np.ndarray) -> Tuple["CSRGraph", np.ndarray]:
        """Subgraph on ``vertices`` with local relabeling.

        Returns ``(subgraph, vertices)`` where subgraph vertex ``i``
        corresponds to global vertex ``vertices[i]``.
        """
        vertices = np.unique(np.asarray(vertices, dtype=np.int64))
        local_of_global = np.full(self.num_vertices, -1, dtype=np.int64)
        local_of_global[vertices] = np.arange(len(vertices))
        src, dst = self.edges()
        keep = (local_of_global[src] >= 0) & (local_of_global[dst] >= 0)
        sub = CSRGraph.from_edges(
            local_of_global[src[keep]], local_of_global[dst[keep]], len(vertices)
        )
        return sub, vertices

    # ------------------------------------------------------------------
    # Export / comparison
    # ------------------------------------------------------------------
    def edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return parallel (src, dst) arrays of all directed edges."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees)
        return src, self.indices.copy()

    def to_scipy(self, dtype=np.float64) -> sp.csr_matrix:
        """Pattern matrix with unit weights (rows = sources)."""
        data = np.ones(self.num_edges, dtype=dtype)
        return sp.csr_matrix(
            (data, self.indices, self.indptr),
            shape=(self.num_vertices, self.num_vertices),
        )

    def is_undirected(self) -> bool:
        """True if the adjacency pattern is symmetric (cached: the O(E)
        check runs once per graph — graphs are immutable)."""
        if self._is_undirected is None:
            a = self.to_scipy(dtype=np.int8)
            self._is_undirected = bool((a != a.T).nnz == 0)
        return self._is_undirected

    def has_sorted_neighbors(self) -> bool:
        if self._is_sorted is None:
            if len(self.indices) <= 1:
                self._is_sorted = True
            else:
                d = np.diff(self.indices)
                boundary = np.zeros(len(self.indices), dtype=bool)
                starts = self.indptr[1:-1]  # first slot of each later list
                boundary[starts[starts < len(self.indices)]] = True
                self._is_sorted = bool(np.all((d > 0) | boundary[1:]))
        return self._is_sorted

    def __eq__(self, other) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (np.array_equal(self.indptr, other.indptr)
                and np.array_equal(self.indices, other.indices))

    def __hash__(self):
        return hash((self.num_vertices, self.num_edges,
                     self.indices[:16].tobytes() if self.num_edges else b""))

    def __repr__(self) -> str:
        return (f"CSRGraph(num_vertices={self.num_vertices}, "
                f"num_edges={self.num_edges}, avg_degree={self.avg_degree:.2f})")

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.indptr.ndim != 1 or len(self.indptr) < 1:
            raise ValueError("indptr must be a non-empty 1-D array")
        if self.indptr[0] != 0:
            raise ValueError(f"indptr[0] must be 0, got {self.indptr[0]}")
        if self.indptr[-1] != len(self.indices):
            raise ValueError(
                f"indptr[-1] ({self.indptr[-1]}) must equal len(indices) ({len(self.indices)})"
            )
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.num_vertices
        ):
            raise ValueError("neighbor index out of range")
