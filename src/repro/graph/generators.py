"""Synthetic graph and workload generators.

The paper evaluates on OGB graphs (ogbn-products, ogbn-papers100M,
lsc-mag240) which are unavailable offline at full scale; the generators here
produce scaled-down graphs that preserve the two properties VIP analysis and
edge-cut partitioning are sensitive to:

* **Skewed (power-law) degree distributions** — drive both the benefit of
  frequency-based caching and the degree-policy baseline of Figure 2.
* **Community structure** — gives METIS-style partitioners a meaningful
  edge-cut to find, which in turn makes the local/remote vertex split (and
  hence communication volume) realistic.

Beyond graphs, this module also generates *non-stationary workloads* for
the dynamic-cache experiments: :func:`drifting_training_sets` (the active
training set migrates across graph communities between epochs) and
:func:`streaming_request_stream` (online-inference request batches whose
popularity hot set shifts over time).  Both produce workloads where the
build-time static VIP cache goes stale and adaptive policies pay off.

All generators take a seed / :class:`numpy.random.Generator` and are fully
vectorized (no per-vertex Python loops).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, as_generator


def erdos_renyi(num_vertices: int, avg_degree: float, seed: SeedLike = None) -> CSRGraph:
    """G(n, m) random graph with ``m = n * avg_degree / 2`` undirected edges."""
    rng = as_generator(seed)
    n = int(num_vertices)
    m = int(round(n * avg_degree / 2))
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    keep = src != dst
    return CSRGraph.from_edges(src[keep], dst[keep], n, dedup=True).to_undirected()


def pareto_degree_weights(
    num_vertices: int,
    avg_degree: float,
    power: float = 2.5,
    seed: SeedLike = None,
) -> np.ndarray:
    """Expected-degree weights following a Pareto (power-law) distribution.

    ``power`` is the exponent of the degree distribution tail; 2-3 matches
    citation and co-purchase networks.  The returned weights are scaled so
    their mean equals ``avg_degree``.
    """
    if power <= 1.0:
        raise ValueError(f"power must be > 1 for a finite mean, got {power}")
    rng = as_generator(seed)
    w = rng.pareto(power - 1.0, size=num_vertices) + 1.0
    # Clip the extreme tail so a single vertex cannot swallow a large fraction
    # of all edges at small n (keeps expected degrees realizable).
    w = np.minimum(w, num_vertices ** 0.5)
    return w * (avg_degree / w.mean())


def chung_lu(
    weights: np.ndarray,
    seed: SeedLike = None,
    *,
    num_edges: Optional[int] = None,
) -> CSRGraph:
    """Chung–Lu random graph: edge endpoints drawn proportional to weights.

    Produces an undirected simple graph whose expected degrees approximate
    ``weights``.  This is the vectorized stand-in for preferential-attachment
    growth (same degree-law, O(M) generation).
    """
    rng = as_generator(seed)
    w = np.asarray(weights, dtype=np.float64)
    n = len(w)
    m = int(round(w.sum() / 2)) if num_edges is None else int(num_edges)
    p = w / w.sum()
    cdf = np.cumsum(p)
    src = np.searchsorted(cdf, rng.random(m), side="right").astype(np.int64)
    dst = np.searchsorted(cdf, rng.random(m), side="right").astype(np.int64)
    keep = src != dst
    return CSRGraph.from_edges(src[keep], dst[keep], n, dedup=True).to_undirected()


def stochastic_block_model(
    block_sizes: np.ndarray,
    p_in: float,
    p_out: float,
    seed: SeedLike = None,
) -> Tuple[CSRGraph, np.ndarray]:
    """Classic SBM with uniform intra/inter-block edge probabilities.

    Returns ``(graph, block_of_vertex)``.  Edge counts are sampled per block
    pair (binomial) and endpoints drawn uniformly inside the blocks, so the
    generator is O(E) rather than O(V^2).
    """
    rng = as_generator(seed)
    sizes = np.asarray(block_sizes, dtype=np.int64)
    if np.any(sizes <= 0):
        raise ValueError("block sizes must be positive")
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    n = int(offsets[-1])
    blocks = np.repeat(np.arange(len(sizes)), sizes)

    src_parts, dst_parts = [], []
    for a in range(len(sizes)):
        for b in range(a, len(sizes)):
            if a == b:
                pairs = sizes[a] * (sizes[a] - 1) // 2
                prob = p_in
            else:
                pairs = sizes[a] * sizes[b]
                prob = p_out
            if pairs <= 0 or prob <= 0:
                continue
            m_ab = rng.binomial(int(pairs), min(prob, 1.0))
            if m_ab == 0:
                continue
            src_parts.append(rng.integers(offsets[a], offsets[a + 1], size=m_ab, dtype=np.int64))
            dst_parts.append(rng.integers(offsets[b], offsets[b + 1], size=m_ab, dtype=np.int64))
    if not src_parts:
        return CSRGraph.from_edges([], [], n), blocks
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    keep = src != dst
    g = CSRGraph.from_edges(src[keep], dst[keep], n, dedup=True).to_undirected()
    return g, blocks


def rmat(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: SeedLike = None,
) -> CSRGraph:
    """R-MAT/Kronecker generator (Graph500 defaults), undirected output.

    ``2**scale`` vertices and ``edge_factor * 2**scale`` edge samples.
    """
    if not 0 < a + b + c < 1:
        raise ValueError("a + b + c must be in (0, 1)")
    rng = as_generator(seed)
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(m)
        # Quadrant choice: (0,0) w.p. a, (0,1) w.p. b, (1,0) w.p. c, (1,1) else.
        src_bit = r >= a + b
        dst_bit = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        src |= src_bit.astype(np.int64) << bit
        dst |= dst_bit.astype(np.int64) << bit
    keep = src != dst
    return CSRGraph.from_edges(src[keep], dst[keep], n, dedup=True).to_undirected()


def power_law_community_graph(
    num_vertices: int,
    avg_degree: float,
    num_communities: int = 64,
    intra_fraction: float = 0.9,
    power: float = 2.5,
    seed: SeedLike = None,
) -> Tuple[CSRGraph, np.ndarray]:
    """The OGB stand-in: power-law degrees + planted community structure.

    Vertices are assigned to ``num_communities`` communities with log-normal
    size skew; ``intra_fraction`` of edges stay within a community (endpoints
    drawn Chung-Lu-style, proportional to per-vertex weights), the rest
    connect arbitrary vertices.  Returns ``(graph, community_of_vertex)``.

    With ``intra_fraction`` around 0.9 a k-way edge-cut partitioner recovers a
    cut comparable (relatively) to METIS on the real OGB graphs, which is what
    makes the downstream communication-volume experiments meaningful.
    """
    if not 0.0 <= intra_fraction <= 1.0:
        raise ValueError(f"intra_fraction must be in [0, 1], got {intra_fraction}")
    rng = as_generator(seed)
    n = int(num_vertices)
    C = int(num_communities)

    # Log-normal community sizes, at least 2 vertices each.
    raw = rng.lognormal(mean=0.0, sigma=0.75, size=C)
    sizes = np.maximum((raw / raw.sum() * n).astype(np.int64), 2)
    while sizes.sum() != n:  # fix rounding drift
        delta = n - int(sizes.sum())
        idx = rng.integers(0, C)
        if sizes[idx] + np.sign(delta) >= 2:
            sizes[idx] += np.sign(delta)
    community = rng.permutation(np.repeat(np.arange(C, dtype=np.int64), sizes))

    w = pareto_degree_weights(n, avg_degree, power=power, seed=rng)
    total_edges = int(round(n * avg_degree / 2))
    m_intra = int(round(total_edges * intra_fraction))
    m_inter = total_edges - m_intra

    # Allocate intra-community edges proportional to community weight mass.
    comm_weight = np.bincount(community, weights=w, minlength=C)
    alloc = rng.multinomial(m_intra, comm_weight / comm_weight.sum())

    members_of = [np.flatnonzero(community == c0) for c0 in range(C)]
    src_parts, dst_parts = [], []
    for c0 in range(C):
        m_c, members = int(alloc[c0]), members_of[c0]
        if m_c == 0 or len(members) < 2:
            continue
        pw = w[members]
        cdf = np.cumsum(pw / pw.sum())
        s = members[np.searchsorted(cdf, rng.random(m_c), side="right")]
        d = members[np.searchsorted(cdf, rng.random(m_c), side="right")]
        src_parts.append(s)
        dst_parts.append(d)

    if m_inter > 0:
        cdf = np.cumsum(w / w.sum())
        src_parts.append(np.searchsorted(cdf, rng.random(m_inter), side="right").astype(np.int64))
        dst_parts.append(np.searchsorted(cdf, rng.random(m_inter), side="right").astype(np.int64))

    src = np.concatenate(src_parts) if src_parts else np.empty(0, dtype=np.int64)
    dst = np.concatenate(dst_parts) if dst_parts else np.empty(0, dtype=np.int64)
    keep = src != dst
    g = CSRGraph.from_edges(src[keep], dst[keep], n, dedup=True).to_undirected()
    return g, community


# ----------------------------------------------------------------------
# Non-stationary workload generators (dynamic-cache experiments).


def drifting_training_sets(
    train_pool: np.ndarray,
    community: np.ndarray,
    num_phases: int,
    *,
    active_fraction: float = 0.4,
    window_fraction: float = 0.3,
    background_fraction: float = 0.2,
    seed: SeedLike = None,
) -> List[np.ndarray]:
    """Training sets that migrate across graph communities between phases.

    Phase ``t`` activates ``active_fraction`` of the training pool, drawn
    mostly from a sliding window of ``window_fraction`` of the communities
    (the window rotates one full circle over the phases, wrapping around)
    plus a ``background_fraction`` share sampled uniformly from the whole
    pool.  The windowed part makes the *neighborhood-expansion* hot set
    move through the graph — exactly the drift that stales a build-time VIP
    cache — while the uniform background keeps every partition of a
    community-aware partitioner supplied with seeds, so the bulk-synchronous
    trainer never starves.

    Parameters
    ----------
    train_pool:
        Candidate training vertex ids (e.g. ``dataset.train_idx``, in
        whatever vertex numbering the consumer uses).
    community:
        Per-vertex community labels aligned with that numbering
        (``dataset.community``).
    num_phases:
        Number of training sets to generate (typically one per epoch).

    Returns
    -------
    list of ``num_phases`` sorted id arrays (phases may overlap).
    """
    if not 0.0 < active_fraction <= 1.0:
        raise ValueError(f"active_fraction must be in (0, 1], got {active_fraction}")
    if not 0.0 < window_fraction <= 1.0:
        raise ValueError(f"window_fraction must be in (0, 1], got {window_fraction}")
    if not 0.0 <= background_fraction <= 1.0:
        raise ValueError(
            f"background_fraction must be in [0, 1], got {background_fraction}"
        )
    rng = as_generator(seed)
    pool = np.asarray(train_pool, dtype=np.int64)
    comm = np.asarray(community)[pool]
    comm_ids = np.unique(comm)
    C = len(comm_ids)
    win = max(1, int(round(window_fraction * C)))
    size = max(1, int(round(active_fraction * len(pool))))
    n_bg = int(round(background_fraction * size))

    phases = []
    for t in range(num_phases):
        start = int(round(t * C / max(num_phases, 1))) % C
        window = comm_ids[(np.arange(win) + start) % C]
        in_window = np.isin(comm, window)
        windowed = pool[in_window]
        n_win = min(size - n_bg, len(windowed))
        chosen = rng.choice(windowed, size=n_win, replace=False) if n_win else \
            np.empty(0, dtype=np.int64)
        # Uniform background (plus top-up if the window ran short).
        rest = pool[~np.isin(pool, chosen)]
        n_rest = min(size - n_win, len(rest))
        if n_rest:
            chosen = np.concatenate([chosen, rng.choice(rest, size=n_rest,
                                                        replace=False)])
        phases.append(np.sort(chosen))
    return phases


def streaming_request_stream(
    candidate_ids: np.ndarray,
    num_batches: int,
    batch_size: int,
    *,
    hot_fraction: float = 0.05,
    hot_mass: float = 0.8,
    drift_interval: int = 50,
    seed: SeedLike = None,
) -> Iterator[np.ndarray]:
    """Online-inference request batches with a drifting popularity hot set.

    Each batch draws ``batch_size`` distinct seed vertices from
    ``candidate_ids``: with probability mass ``hot_mass`` from the current
    *hot set* (``hot_fraction`` of the candidates), uniformly otherwise —
    the skewed-and-shifting traffic shape of a production inference service
    (trending items, news cycles).  Every ``drift_interval`` batches a fresh
    hot set is drawn, so frequency state built on the old one goes stale.

    **Guarantee**: every yielded batch has *exactly* ``batch_size`` distinct
    seeds — the cold top-up draws from all candidates outside the hot picks
    (including not-yet-picked hot ids), so the pool can only run short when
    ``batch_size > len(candidate_ids)``, which is rejected up front instead
    of silently yielding an under-sized batch.

    Yields ``num_batches`` sorted id arrays.
    """
    if not 0.0 < hot_fraction <= 1.0:
        raise ValueError(f"hot_fraction must be in (0, 1], got {hot_fraction}")
    if not 0.0 <= hot_mass <= 1.0:
        raise ValueError(f"hot_mass must be in [0, 1], got {hot_mass}")
    if drift_interval <= 0:
        raise ValueError(f"drift_interval must be positive, got {drift_interval}")
    cand = np.asarray(candidate_ids, dtype=np.int64)
    if len(np.unique(cand)) != len(cand):
        raise ValueError("candidate_ids must be distinct")
    if batch_size > len(cand):
        raise ValueError(
            f"batch_size {batch_size} exceeds the {len(cand)} candidate ids; "
            f"a batch of distinct seeds that size cannot exist"
        )
    rng = as_generator(seed)
    n_hot = max(1, int(round(hot_fraction * len(cand))))
    hot = rng.choice(cand, size=n_hot, replace=False)
    for b in range(num_batches):
        if b > 0 and b % drift_interval == 0:
            hot = rng.choice(cand, size=n_hot, replace=False)
        n_from_hot = min(rng.binomial(batch_size, hot_mass), n_hot)
        picks = rng.choice(hot, size=n_from_hot, replace=False)
        n_cold = batch_size - n_from_hot
        if n_cold:
            # Cold picks come from outside the hot picks (unpicked hot ids
            # included) so the batch keeps exactly batch_size distinct seeds.
            pool = np.setdiff1d(cand, picks)
            cold = rng.choice(pool, size=n_cold, replace=False)
            picks = np.concatenate([picks, cold])
        yield np.sort(picks)


def edge_stream(
    graph,
    num_batches: int,
    batch_edges: int,
    *,
    delete_fraction: float = 0.5,
    pool: Optional[np.ndarray] = None,
    community: Optional[np.ndarray] = None,
    degree_bias: bool = True,
    seed: SeedLike = None,
) -> Iterator["EdgeBatch"]:
    """Edge-churn batches for the streaming-graph workloads.

    Yields :class:`~repro.graph.mutable.EdgeBatch`\\ es of ``batch_edges``
    operations each, split ``delete_fraction`` deletions / the rest
    insertions.  The stream is *live*: each batch is drawn against the
    graph's **current** state (degrees and adjacency are re-read at yield
    time), so the intended protocol is apply-then-advance::

        for batch in edge_stream(mgraph, 20, 500, seed=0):
            mgraph.apply(batch)
            ...

    Shape of the churn — chosen to mirror how real graphs grow rather than
    uniform noise:

    * **Insertions** attach preferentially: endpoints are drawn with
      probability proportional to current degree + 1 (``degree_bias=False``
      gives uniform endpoints).  With ``community`` labels, the second
      endpoint is drawn from the first endpoint's community, keeping churn
      *local* — new citations/links overwhelmingly land inside an existing
      neighborhood, and locality is also what makes incremental VIP's
      dirty wave stay narrow.
    * **Deletions** remove a uniform neighbor of a degree-biased vertex —
      i.e. (approximately) a uniform existing edge — without ever
      enumerating the edge set, so drawing a batch is O(batch), not O(M).

    ``pool`` restricts both endpoints to a vertex subset (e.g. one
    partition, to localize churn); it must not contain tombstoned ids.
    Batches may contain duplicate or already-absent ops — the overlay's
    set semantics absorb them.
    """
    from repro.graph.mutable import EdgeBatch

    if batch_edges <= 0:
        raise ValueError(f"batch_edges must be positive, got {batch_edges}")
    if not 0.0 <= delete_fraction <= 1.0:
        raise ValueError(
            f"delete_fraction must be in [0, 1], got {delete_fraction}"
        )
    rng = as_generator(seed)
    if pool is None:
        pool = np.arange(graph.num_vertices, dtype=np.int64)
    else:
        pool = np.unique(np.asarray(pool, dtype=np.int64))
        if len(pool) < 2:
            raise ValueError("pool must contain at least two vertices")
    members = None
    if community is not None:
        community = np.asarray(community)
        labels = community[pool]
        order = np.argsort(labels, kind="stable")
        uniq, starts = np.unique(labels[order], return_index=True)
        bounds = np.append(starts, len(order))
        members = {int(c): pool[order[bounds[i]:bounds[i + 1]]]
                   for i, c in enumerate(uniq)}

    n_del = int(round(delete_fraction * batch_edges))
    n_add = batch_edges - n_del
    for _ in range(num_batches):
        degrees = np.asarray(graph.degrees, dtype=np.float64)[pool]
        w = (degrees + 1.0) if degree_bias else np.ones(len(pool))
        p_add = w / w.sum()

        add_src = add_dst = del_src = del_dst = np.empty(0, dtype=np.int64)
        if n_add:
            add_src = rng.choice(pool, size=n_add, p=p_add)
            if members is None:
                add_dst = rng.choice(pool, size=n_add, p=p_add)
            else:
                add_dst = np.empty(n_add, dtype=np.int64)
                src_comms = community[add_src]
                for c in np.unique(src_comms):
                    idx = np.flatnonzero(src_comms == c)
                    add_dst[idx] = rng.choice(members[int(c)], size=len(idx))
            keep = add_src != add_dst  # no self-loops
            add_src, add_dst = add_src[keep], add_dst[keep]
        if n_del:
            has_edges = degrees > 0
            if has_edges.any():
                p_del = np.where(has_edges, degrees, 0.0)
                p_del /= p_del.sum()
                del_src = rng.choice(pool, size=n_del, p=p_del)
                del_dst = np.empty(n_del, dtype=np.int64)
                for i, v in enumerate(del_src):
                    row = graph.neighbors(int(v))
                    del_dst[i] = row[rng.integers(len(row))]
            else:
                del_src = del_dst = np.empty(0, dtype=np.int64)
        yield EdgeBatch(add_src=add_src, add_dst=add_dst,
                        del_src=del_src, del_dst=del_dst)
