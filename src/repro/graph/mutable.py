"""Streaming graph mutation: a delta-CSR overlay over :class:`CSRGraph`.

Every workload so far drifts only the *seed distribution* over a frozen
graph.  :class:`MutableGraph` opens the evolving-graph scenario: edge and
vertex insert/delete batches are applied to an **overlay** on top of an
immutable base CSR, so mutation cost is proportional to churn instead of
graph size, and downstream consumers can find out exactly which rows
changed (:meth:`MutableGraph.dirty_frontier`) instead of re-deriving the
world from scratch.

Design
------
* **Base + overlay.**  The base is an ordinary (immutable, canonical)
  :class:`CSRGraph`.  Rows touched by a mutation get a private overlay
  copy (sorted, duplicate-free — the same canonical form
  :meth:`CSRGraph.from_edges` with ``dedup=True`` produces); untouched
  rows keep reading the base arrays.  Edge semantics are set-based:
  inserting a present edge and deleting an absent one are counted no-ops.
* **Append-only delta log with tombstones.**  Each applied batch appends
  one :class:`DeltaRecord` carrying the batch's version and, for every row
  it touched, the row's *prior* content.  Deleted vertices are tombstoned
  (their rows emptied, ids retained — ids are stable for the lifetime of
  the graph) and deleted edges simply vanish from the overlay rows; the
  log is what remembers them.  The log is the basis for *exact*
  multi-consumer dirty tracking: :meth:`dirty_frontier` ``(since)``
  replays prior contents to reconstruct each candidate row at ``since``
  and reports only rows whose content *actually differs* now — a row
  changed and reverted inside the window is not dirty.
* **Version counter.**  ``version`` increments once per applied batch.
  Consumers (VIP snapshots, caches) remember the version they last saw
  and ask for the frontier since then; nothing is cleared, so any number
  of independent consumers can track the same graph.
* **Compaction.**  Past ``compact_cutoff`` (overlay entries as a fraction
  of base edges) — or on demand — :meth:`compact` rebuilds a clean base
  CSR through :meth:`CSRGraph.from_edges` (``dedup=True``) and drops the
  overlay.  Compaction changes no effective row, so the delta log (and
  every consumer's dirty bookkeeping) survives it untouched.

Read paths
----------
The neighborhood sampler reads *through* the overlay: :class:`MutableGraph`
implements the same vectorized adjacency protocol as :class:`CSRGraph`
(``degrees``, :meth:`row_starts`, :meth:`take_edges`) by lazily freezing
the overlay rows into a side pool, so :func:`repro.sampling.neighbor.
sample_neighbors` works on either class with identical RNG consumption.
Incremental VIP (:mod:`repro.vip.incremental`) reads effective rows and
the incoming adjacency (:meth:`in_rows_union`) directly.  Consumers that
need a plain CSR call :meth:`materialize` (cached per version; free when
the overlay is empty).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph

#: Default overlay-size cutoff (fraction of base directed edges) past which
#: :meth:`MutableGraph.apply` compacts automatically.
COMPACT_CUTOFF = 0.25

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class EdgeBatch:
    """One batch of edge insertions and deletions.

    Endpoints are given once per edge; on an undirected graph the batch is
    symmetrized at apply time (both CSR directions change).  Arrays may be
    empty; duplicates within the batch collapse to one set operation.
    """

    add_src: np.ndarray = field(default_factory=lambda: _EMPTY)
    add_dst: np.ndarray = field(default_factory=lambda: _EMPTY)
    del_src: np.ndarray = field(default_factory=lambda: _EMPTY)
    del_dst: np.ndarray = field(default_factory=lambda: _EMPTY)

    def __post_init__(self):
        for name in ("add_src", "add_dst", "del_src", "del_dst"):
            object.__setattr__(self, name,
                               np.asarray(getattr(self, name),
                                          dtype=np.int64).ravel())
        if self.add_src.shape != self.add_dst.shape:
            raise ValueError("add_src and add_dst must have equal length")
        if self.del_src.shape != self.del_dst.shape:
            raise ValueError("del_src and del_dst must have equal length")

    @property
    def num_ops(self) -> int:
        return len(self.add_src) + len(self.del_src)

    def __repr__(self) -> str:
        return (f"EdgeBatch(+{len(self.add_src)} edges, "
                f"-{len(self.del_src)} edges)")


@dataclass(frozen=True)
class DeltaRecord:
    """One applied batch in the append-only delta log.

    ``prior_rows`` maps each row the batch touched to its content *before*
    the batch (the tombstone record for anything the batch deleted); with
    the current rows this reconstructs any row at any logged version.
    """

    version: int
    prior_rows: Dict[int, np.ndarray]
    prior_num_vertices: int
    edges_added: int
    edges_removed: int


class MutableGraph:
    """Delta-CSR overlay supporting streaming edge/vertex mutation.

    Parameters
    ----------
    base:
        The starting graph.  Canonicalized (rows sorted, duplicate edges
        dropped) if not already canonical, since overlay semantics are
        set-based — :meth:`CSRGraph.has_sorted_neighbors` is exactly the
        canonical-form predicate.
    undirected:
        Apply every edge op in both directions (defaults to
        ``base.is_undirected()``, the repo-wide convention that symmetric
        adjacency == undirected graph).
    compact_cutoff:
        Auto-compact when overlay entries exceed this fraction of base
        directed edges; ``None`` disables auto-compaction.
    """

    def __init__(self, base: CSRGraph, *, undirected: Optional[bool] = None,
                 compact_cutoff: Optional[float] = COMPACT_CUTOFF):
        if undirected is None:
            undirected = base.is_undirected()
        if not base.has_sorted_neighbors():
            src, dst = base.edges()
            base = CSRGraph.from_edges(src, dst, base.num_vertices, dedup=True)
        self.base = base
        self.undirected = bool(undirected)
        if compact_cutoff is not None and compact_cutoff < 0:
            raise ValueError(
                f"compact_cutoff must be non-negative or None (0 compacts "
                f"after every batch), got {compact_cutoff}"
            )
        self.compact_cutoff = compact_cutoff
        #: Bumped once per applied batch.
        self.version = 0
        self._n = base.num_vertices
        self._degrees = base.degrees.astype(np.int64).copy()
        #: Overlay rows: effective (sorted, unique) adjacency of every row
        #: touched since the last compact.
        self._rows: Dict[int, np.ndarray] = {}
        #: Incoming-adjacency overlay (directed graphs only; aliases
        #: ``_rows`` when undirected).  Base side is ``base.reverse()``,
        #: built lazily on first in-neighbor query.
        self._in_rows: Dict[int, np.ndarray] = {} if not undirected else self._rows
        self._base_incoming: Optional[CSRGraph] = None
        self._tombstoned: set = set()
        self.log: List[DeltaRecord] = []
        # Per-version caches for the frozen read path / materialization.
        self._frozen: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._frozen_in: Optional[Tuple[np.ndarray, np.ndarray,
                                        np.ndarray]] = None
        self._csr: Optional[CSRGraph] = None
        self._csr_version = -1

    # ------------------------------------------------------------------
    # Basic properties (CSRGraph-compatible where meaningful)
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        """Effective directed adjacency entries (through the overlay)."""
        return int(self._degrees.sum())

    @property
    def degrees(self) -> np.ndarray:
        """Effective out-degree per vertex (maintained incrementally;
        treat as read-only)."""
        return self._degrees

    @property
    def overlay_entries(self) -> int:
        """Directed adjacency entries held in overlay rows."""
        return sum(len(r) for r in self._rows.values())

    def is_tombstoned(self, v: int) -> bool:
        """True if ``v`` was removed (its id survives, its row is empty)."""
        return int(v) in self._tombstoned

    def neighbors(self, v: int) -> np.ndarray:
        """Effective out-neighbors of ``v`` (sorted; do not mutate)."""
        row = self._rows.get(int(v))
        if row is not None:
            return row
        if v >= self.base.num_vertices:
            return _EMPTY
        return self.base.neighbors(v)

    def in_neighbors(self, v: int) -> np.ndarray:
        """Effective in-neighbors of ``v`` — the rows whose adjacency
        list contains ``v`` (== :meth:`neighbors` when undirected)."""
        if self.undirected:
            return self.neighbors(v)
        row = self._in_rows.get(int(v))
        if row is not None:
            return row
        if v >= self.base.num_vertices:
            return _EMPTY
        return self._incoming_base().neighbors(v)

    def __repr__(self) -> str:
        return (f"MutableGraph(num_vertices={self._n}, "
                f"num_edges={self.num_edges}, version={self.version}, "
                f"overlay_rows={len(self._rows)}, "
                f"undirected={self.undirected})")

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertices(self, count: int) -> np.ndarray:
        """Append ``count`` isolated vertices; returns their ids."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        ids = np.arange(self._n, self._n + count, dtype=np.int64)
        if count:
            self._apply(EdgeBatch(), new_vertices=int(count))
        return ids

    def add_edges(self, src: Iterable[int], dst: Iterable[int]) -> DeltaRecord:
        """Insert edges (idempotent per edge); one version bump."""
        return self._apply(EdgeBatch(add_src=src, add_dst=dst))

    def remove_edges(self, src: Iterable[int], dst: Iterable[int]) -> DeltaRecord:
        """Delete edges (absent edges are counted no-ops); one bump."""
        return self._apply(EdgeBatch(del_src=src, del_dst=dst))

    def remove_vertices(self, vertices: Iterable[int]) -> DeltaRecord:
        """Tombstone ``vertices``: delete every incident edge (both
        directions) and leave the ids as permanently isolated rows."""
        vs = np.unique(np.asarray(vertices, dtype=np.int64))
        if len(vs) and (vs[0] < 0 or vs[-1] >= self._n):
            raise ValueError("vertex id out of range")
        del_src, del_dst = [], []
        for v in vs:
            out = self.neighbors(v)
            del_src.append(np.full(len(out), v, dtype=np.int64))
            del_dst.append(out.copy())
            if not self.undirected:
                inc = self.in_neighbors(v)
                del_src.append(inc.copy())
                del_dst.append(np.full(len(inc), v, dtype=np.int64))
        batch = EdgeBatch(
            del_src=np.concatenate(del_src) if del_src else _EMPTY,
            del_dst=np.concatenate(del_dst) if del_dst else _EMPTY,
        )
        rec = self._apply(batch, tombstones=[int(v) for v in vs])
        return rec

    def apply(self, batch: EdgeBatch) -> DeltaRecord:
        """Apply one :class:`EdgeBatch`; bumps :attr:`version` by one and
        returns the appended :class:`DeltaRecord`.  Auto-compacts past the
        configured overlay cutoff."""
        return self._apply(batch)

    # -- internals ------------------------------------------------------
    def _check_range(self, arr: np.ndarray) -> None:
        if len(arr) and (arr.min() < 0 or arr.max() >= self._n):
            raise ValueError(
                f"edge endpoint out of range [0, {self._n})"
            )

    def _touch(self, prior: Dict[int, np.ndarray], v: int) -> None:
        if v not in prior:
            prior[v] = self.neighbors(v)  # views/overlay arrays are never
            # mutated in place, so the prior record can share storage.

    def _row_set(self, rows: Dict[int, np.ndarray], v: int,
                 content: np.ndarray) -> None:
        rows[v] = content
        if rows is self._rows:
            self._degrees[v] = len(content)

    def _edit_rows(self, rows: Dict[int, np.ndarray],
                   read_row, src: np.ndarray, dst: np.ndarray,
                   insert: bool, prior: Dict[int, np.ndarray],
                   track_prior: bool) -> int:
        """Group ``(src, dst)`` by source row and apply set inserts or
        deletes; returns the number of ops that changed a row."""
        applied = 0
        if not len(src):
            return applied
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        bounds = np.flatnonzero(np.diff(src)) + 1
        starts = np.concatenate([[0], bounds, [len(src)]])
        for i in range(len(starts) - 1):
            v = int(src[starts[i]])
            targets = np.unique(dst[starts[i]:starts[i + 1]])
            row = read_row(v)
            if insert:
                new_row = np.union1d(row, targets)
            else:
                new_row = np.setdiff1d(row, targets, assume_unique=True)
            if len(new_row) == len(row):
                continue
            if track_prior:
                self._touch(prior, v)
            applied += abs(len(new_row) - len(row))
            self._row_set(rows, v, new_row)
        return applied

    def _apply(self, batch: EdgeBatch, *, new_vertices: int = 0,
               tombstones: Optional[List[int]] = None) -> DeltaRecord:
        for arr in (batch.add_src, batch.add_dst, batch.del_src,
                    batch.del_dst):
            self._check_range(arr)
        tombstoned_now = set(tombstones or ())
        if tombstoned_now & self._tombstoned:
            raise ValueError("vertex already removed")
        add_src, add_dst = batch.add_src, batch.add_dst
        if len(add_src):
            dead = np.fromiter(self._tombstoned, dtype=np.int64,
                               count=len(self._tombstoned))
            if len(dead) and (np.isin(add_src, dead).any()
                              or np.isin(add_dst, dead).any()):
                raise ValueError("cannot add edges incident to a removed vertex")
        prior_n = self._n
        prior: Dict[int, np.ndarray] = {}
        self._n += new_vertices
        if new_vertices:
            self._degrees = np.concatenate([
                self._degrees, np.zeros(new_vertices, dtype=np.int64)
            ])
        if self.undirected and len(add_src):
            loops = add_src == add_dst
            add_src, add_dst = (np.concatenate([add_src, add_dst[~loops]]),
                                np.concatenate([add_dst, add_src[~loops]]))
        del_src, del_dst = batch.del_src, batch.del_dst
        if self.undirected and len(del_src):
            loops = del_src == del_dst
            del_src, del_dst = (np.concatenate([del_src, del_dst[~loops]]),
                                np.concatenate([del_dst, del_src[~loops]]))

        added = self._edit_rows(self._rows, self.neighbors,
                                add_src, add_dst, True, prior, True)
        removed = self._edit_rows(self._rows, self.neighbors,
                                  del_src, del_dst, False, prior, True)
        if not self.undirected:
            # Mirror the ops on the incoming overlay (swap endpoints).
            # Prior rows track out-rows only — the frontier contract is
            # about rows (out-adjacency), and in-rows of a changed edge
            # are recoverable from the same record.
            self._edit_rows(self._in_rows, self.in_neighbors,
                            add_dst, add_src, True, prior, False)
            self._edit_rows(self._in_rows, self.in_neighbors,
                            del_dst, del_src, False, prior, False)
        self._tombstoned |= tombstoned_now
        for v in tombstoned_now:
            # An isolated removed vertex still counts as touched: its
            # row is pinned to the overlay so a later compact cannot
            # resurrect base edges.
            self._touch(prior, v)
            self._row_set(self._rows, v, _EMPTY)
            if not self.undirected:
                self._in_rows[v] = _EMPTY

        self.version += 1
        rec = DeltaRecord(version=self.version, prior_rows=prior,
                          prior_num_vertices=prior_n,
                          edges_added=added, edges_removed=removed)
        self.log.append(rec)
        self._frozen = None
        self._frozen_in = None
        if (self.compact_cutoff is not None
                and self.overlay_entries
                > self.compact_cutoff * max(self.base.num_edges, 1)):
            self.compact()
        return rec

    # ------------------------------------------------------------------
    # Dirty tracking
    # ------------------------------------------------------------------
    def rows_at(self, since_version: int,
                rows: Iterable[int]) -> Dict[int, np.ndarray]:
        """Content of ``rows`` as of ``since_version``, reconstructed from
        the delta log (rows beyond the then-vertex-count are empty)."""
        want = {int(v): None for v in rows}
        n_then = self._n
        for rec in self.log:
            if rec.version <= since_version:
                continue
            n_then = min(n_then, rec.prior_num_vertices)
            for v, row in rec.prior_rows.items():
                if v in want and want[v] is None:
                    want[v] = row
        out = {}
        for v, row in want.items():
            if row is None:
                row = self.neighbors(v)
            out[v] = row if v < n_then else _EMPTY
        return out

    def dirty_frontier(self, since_version: int = 0) -> np.ndarray:
        """Vertices whose adjacency row content differs from what it was
        at ``since_version`` — *exactly*: rows whose mutations cancelled
        out inside the window are not reported.  New vertices appear only
        once they have edges.  O(churn since the version)."""
        if since_version >= self.version:
            return _EMPTY
        if since_version < 0 or (self.log and
                                 since_version < self.log[0].version - 1):
            raise ValueError(
                f"version {since_version} predates the delta log "
                f"(trimmed below {self.log[0].version - 1 if self.log else 0})"
            )
        candidates: set = set()
        for rec in self.log:
            if rec.version > since_version:
                candidates.update(rec.prior_rows)
        then = self.rows_at(since_version, candidates)
        dirty = [v for v in candidates
                 if not np.array_equal(self.neighbors(v), then[v])]
        return np.array(sorted(dirty), dtype=np.int64)

    def degree_changed(self, since_version: int = 0) -> np.ndarray:
        """Subset of :meth:`dirty_frontier` whose row *length* changed —
        the rows whose uniform-sampling transition factor is stale."""
        dirty = self.dirty_frontier(since_version)
        then = self.rows_at(since_version, dirty)
        keep = [v for v in dirty if len(then[int(v)]) != self._degrees[v]]
        return np.array(keep, dtype=np.int64)

    def trim_log(self, before_version: int) -> int:
        """Drop delta records at or below ``before_version`` (call once
        every consumer has refreshed past it); returns records dropped.
        Frontier queries for older versions raise afterwards."""
        keep = [r for r in self.log if r.version > before_version]
        dropped = len(self.log) - len(keep)
        self.log = keep
        return dropped

    # ------------------------------------------------------------------
    # Read paths
    # ------------------------------------------------------------------
    def _incoming_base(self) -> CSRGraph:
        if self._base_incoming is None:
            self._base_incoming = (self.base if self.undirected
                                   else self.base.reverse())
        return self._base_incoming

    @staticmethod
    def _positions(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
        """Row-major pool positions for rows starting at ``starts`` with
        ``counts`` entries each: ``starts[i] + 0..counts[i]-1``."""
        total = int(counts.sum())
        offsets = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return (np.repeat(starts - offsets[:-1], counts)
                + np.arange(total, dtype=np.int64))

    def in_rows_union(self, vertices: np.ndarray) -> np.ndarray:
        """Sorted unique rows whose adjacency contains any of ``vertices``
        (on the *current* effective graph) — the frontier-expansion step
        of incremental VIP.  Cost ∝ the in-degree volume of ``vertices``,
        fully vectorized through the frozen pool layout."""
        vertices = np.asarray(vertices, dtype=np.int64)
        if not len(vertices):
            return _EMPTY
        if self.undirected:
            _, flat = self.rows_concat(vertices)
            return np.unique(flat)
        starts, pool, indeg = self._freeze_incoming()
        counts = indeg[vertices]
        if not counts.sum():
            return _EMPTY
        pos = self._positions(starts[vertices], counts)
        gin = self._incoming_base()
        m0 = gin.num_edges
        if not len(pool):
            return np.unique(gin.indices[pos])
        over = pos >= m0
        safe = np.where(over, 0, pos)
        flat = (gin.indices[safe] if m0
                else np.zeros(len(pos), dtype=np.int64))
        if over.any():
            flat[over] = pool[pos[over] - m0]
        return np.unique(flat)

    def rows_concat(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(counts, flat)``: effective adjacency of ``rows`` concatenated
        row-major (each row in its canonical sorted order).  Vectorized —
        one gather over the frozen pool, no per-row Python."""
        rows = np.asarray(rows, dtype=np.int64)
        counts = self._degrees[rows]
        if not counts.sum():
            return counts, _EMPTY
        pos = self._positions(self.row_starts(rows), counts)
        return counts, self.take_edges(pos)

    # -- vectorized sampler protocol -----------------------------------
    def _freeze(self) -> Tuple[np.ndarray, np.ndarray]:
        """Pool layout for :meth:`row_starts`/:meth:`take_edges`: overlay
        rows packed into a side pool addressed past ``base.num_edges``."""
        if self._frozen is None:
            m0 = self.base.num_edges
            starts = np.empty(self._n, dtype=np.int64)
            nb = self.base.num_vertices
            starts[:nb] = self.base.indptr[:-1]
            starts[nb:] = m0  # new vertices: empty unless in the overlay
            if self._rows:
                keys = sorted(self._rows)
                offs = m0
                pool_parts = []
                for v in keys:
                    row = self._rows[v]
                    starts[v] = offs
                    offs += len(row)
                    pool_parts.append(row)
                pool = (np.concatenate(pool_parts) if pool_parts
                        else _EMPTY)
            else:
                pool = _EMPTY
            self._frozen = (starts, pool)
        return self._frozen

    def _freeze_incoming(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Incoming-side pool layout (directed graphs): ``(starts, pool,
        in_degrees)`` over the reverse base + ``_in_rows`` overlay."""
        if self._frozen_in is None:
            gin = self._incoming_base()
            m0 = gin.num_edges
            nb = gin.num_vertices
            starts = np.empty(self._n, dtype=np.int64)
            starts[:nb] = gin.indptr[:-1]
            starts[nb:] = m0
            indeg = np.zeros(self._n, dtype=np.int64)
            indeg[:nb] = np.diff(gin.indptr)
            if self._in_rows:
                offs = m0
                pool_parts = []
                for v in sorted(self._in_rows):
                    row = self._in_rows[v]
                    starts[v] = offs
                    indeg[v] = len(row)
                    offs += len(row)
                    pool_parts.append(row)
                pool = (np.concatenate(pool_parts) if pool_parts
                        else _EMPTY)
            else:
                pool = _EMPTY
            self._frozen_in = (starts, pool, indeg)
        return self._frozen_in

    def row_starts(self, targets: np.ndarray) -> np.ndarray:
        """Start position of each target's row in the virtual edge pool
        (base ``indices`` below ``base.num_edges``, overlay pool above)."""
        return self._freeze()[0][targets]

    def take_edges(self, positions: np.ndarray) -> np.ndarray:
        """Gather neighbor ids at virtual pool ``positions``."""
        starts, pool = self._freeze()
        m0 = self.base.num_edges
        base_idx = self.base.indices
        if not len(pool):
            return base_idx[positions]
        over = positions >= m0
        safe = np.where(over, 0, positions)
        out = base_idx[safe] if m0 else np.zeros(len(positions),
                                                 dtype=np.int64)
        if over.any():
            out[over] = pool[positions[over] - m0]
        return out

    # ------------------------------------------------------------------
    # Materialization / compaction
    # ------------------------------------------------------------------
    def materialize(self) -> CSRGraph:
        """The effective graph as a clean :class:`CSRGraph` (cached per
        version; returns the base itself while the overlay is empty)."""
        if self._csr is not None and self._csr_version == self.version:
            return self._csr
        if not self._rows and self._n == self.base.num_vertices:
            csr = self.base
        else:
            src, dst = [], []
            bsrc, bdst = self.base.edges()
            if self._rows:
                keep = np.ones(self.base.num_vertices, dtype=bool)
                overlay_rows = np.fromiter(self._rows, dtype=np.int64,
                                           count=len(self._rows))
                keep[overlay_rows[overlay_rows < self.base.num_vertices]] = False
                mask = keep[bsrc]
                bsrc, bdst = bsrc[mask], bdst[mask]
                for v, row in self._rows.items():
                    src.append(np.full(len(row), v, dtype=np.int64))
                    dst.append(row)
            src.append(bsrc)
            dst.append(bdst)
            # dedup=True: the overlay keeps rows canonical already, but the
            # compact path goes through the same duplicate-dropping,
            # neighbor-sorting constructor the rest of the system builds
            # graphs with, so compacted and incrementally-read rows agree
            # byte for byte.
            csr = CSRGraph.from_edges(np.concatenate(src),
                                      np.concatenate(dst),
                                      self._n, dedup=True)
        self._csr = csr
        self._csr_version = self.version
        return csr

    def compact(self) -> CSRGraph:
        """Rebuild the base from the effective graph and drop the overlay.

        Changes no effective row — the delta log and every consumer's
        ``since_version`` bookkeeping remain valid across compaction (the
        log's tombstone records are self-contained).  Returns the new
        base."""
        self.base = self.materialize()
        self._rows = {}
        if self.undirected:
            self._in_rows = self._rows
        else:
            self._in_rows = {}
        self._base_incoming = None
        self._degrees = self.base.degrees.astype(np.int64).copy()
        self._frozen = None
        self._frozen_in = None
        return self.base
