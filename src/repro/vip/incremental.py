"""Incremental VIP refresh on a streaming graph (dirty-frontier recursion).

:func:`repro.vip.analytic.vip_probabilities` evaluates Proposition 1 from
scratch: every hop touches every row the recursion's support reaches.  When
the *graph* changes by a small edge-churn batch, almost all of that work
reproduces values the previous evaluation already holds, bit for bit — the
per-row hop value

    p[h](u) = 1 - prod_{v in row(u)} (1 - t(v) * p[h-1](v))

depends only on (a) row ``u``'s neighbor list, (b) the per-source transition
factor ``t(v) = min(1, f / d(v))``, and (c) ``p[h-1]`` at the row's sources.
All three are local: a mutation batch perturbs them on an O(churn)-sized set
of vertices, and the perturbation propagates per hop only into rows that
*contain* a perturbed source.

:func:`incremental_vip` exploits this.  Against a :class:`VIPSnapshot` of a
previous evaluation it recomputes, per hop, only

    R_h  =  D  ∪  in(T)  ∪  in(C_{h-1})

where ``D`` is the graph's exact dirty frontier since the snapshot (rows
whose content changed — :meth:`repro.graph.mutable.MutableGraph.
dirty_frontier`), ``T`` the rows whose degree (hence transition factor)
changed, ``C_{h-1}`` the rows whose hop-``h-1`` value actually changed, and
``in(S)`` the rows of the *current* graph containing a member of ``S``.
``C_h`` is then filtered **bitwise**: a recomputed row whose value came out
identical does not propagate.  This confines the wave to the churn's
expansion support — mutations far from the seed distribution's reach never
propagate at all.

Bit-identity
------------
The result is bit-identical to a full :func:`vip_probabilities` run on the
materialized (compacted) graph, because every recomputed scalar runs the
*same IEEE-754 operation sequence on the same operands* as the full
evaluation, and every skipped scalar is carried over from a previous
evaluation with the same property:

* effective overlay rows are sorted and duplicate-free exactly like
  compacted CSR rows, so per-row ``np.add.reduceat`` segments see the same
  operands in the same order and length (numpy sums pairwise, so segment
  *shape* matters — which is why rows whose length changed are always
  recomputed rather than reasoned about);
* transition factors are patched per dirty row with the same elementwise
  formula :meth:`~repro.vip.analytic.TransitionTable.vertex_transition`
  uses (the snapshot carries the per-fanout vertex arrays forward — the
  "invalidate only dirty rows of the transition table" rule);
* equation (2)'s log accumulation is replayed in hop order for exactly the
  rows where some hop value changed.

The hypothesis differential suite (``tests/streaming/``) asserts equality
with ``==`` per element across random churn, both directednesses, and
``-1`` fanouts.

Past a churn cutoff (cumulative touched edge volume as a fraction of the
dense sweep's total, ``num_hops * num_edges``) the wave is no longer
cheaper than a sweep and the refresh falls back to the full evaluation on
the materialized graph — same output, full cost — after pre-populating
that graph's :class:`~repro.vip.analytic.TransitionTable` from the patched
snapshot entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.mutable import MutableGraph
from repro.vip.analytic import (VIPResult, _normalize_fanout,
                                transition_table, vip_probabilities)

#: Default fraction of the dense sweep's total edge volume
#: (``num_hops * num_edges``) a refresh may touch, cumulatively across hops,
#: before it falls back to a full recompute on the materialized graph.  The
#: incremental path's per-edge cost is close to the dense sweep's, and the
#: dense path additionally pays a CSR rebuild, so the crossover sits well
#: past half the sweep volume; 0.5 is conservative.
CHURN_CUTOFF = 0.5

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass
class RefreshStats:
    """What one :func:`incremental_vip` call actually did."""

    mode: str  #: ``"incremental"``, ``"full"`` (cutoff fallback), or ``"noop"``
    dirty_rows: int = 0  #: |D| — rows whose content changed since the snapshot
    rows_recomputed: int = 0  #: Σ_h |R_h|
    edges_touched: int = 0  #: Σ_h (edge volume of R_h)
    rows_changed: int = 0  #: Σ_h |C_h| — recomputed rows whose value changed


@dataclass
class VIPSnapshot:
    """One consumer's view of a VIP evaluation on a streaming graph.

    Pins the graph :attr:`version` the evaluation saw together with
    everything the next refresh needs to be O(churn): the full
    :class:`~repro.vip.analytic.VIPResult` (hopwise values are the
    recursion state) and the per-fanout vertex-transition arrays (the
    consumer's slice of the transition table, patched — not recomputed —
    on refresh).  Snapshots are independent: any number of consumers
    (serving machines, training partitions) can hold snapshots of the same
    graph at different versions.
    """

    version: int
    initial: np.ndarray
    fanouts: Tuple[int, ...]
    result: VIPResult
    vertex_transitions: Dict[int, np.ndarray]
    num_vertices: int
    stats: RefreshStats = field(
        default_factory=lambda: RefreshStats(mode="full"))

    @property
    def access(self) -> np.ndarray:
        return self.result.access


def _vertex_transition_values(key: int, degrees: np.ndarray) -> np.ndarray:
    """``min(1, f / max(d, 1))`` — elementwise identical to
    :meth:`TransitionTable.vertex_transition` on the same degrees."""
    if key < 0:
        return np.ones(len(degrees), dtype=np.float64)
    return np.minimum(key / np.maximum(degrees.astype(np.float64), 1.0), 1.0)


def _capture_transitions(mgraph: MutableGraph,
                         fanouts: Sequence[int]) -> Dict[int, np.ndarray]:
    degrees = mgraph.degrees
    out: Dict[int, np.ndarray] = {}
    for fanout in fanouts:
        key = _normalize_fanout(fanout)
        if key not in out:
            out[key] = _vertex_transition_values(key, degrees)
    return out


def snapshot_vip(
    mgraph: MutableGraph,
    initial: np.ndarray,
    fanouts: Sequence[int],
) -> VIPSnapshot:
    """Full Proposition-1 evaluation on the materialized graph, captured as
    the baseline :class:`VIPSnapshot` for later incremental refreshes."""
    result = vip_probabilities(mgraph.materialize(), initial, fanouts)
    return VIPSnapshot(
        version=mgraph.version,
        initial=np.asarray(initial, dtype=np.float64),
        fanouts=tuple(int(f) for f in fanouts),
        result=result,
        vertex_transitions=_capture_transitions(mgraph, fanouts),
        num_vertices=mgraph.num_vertices,
    )


def _padded(arr: np.ndarray, n: int, *, fill: float = 0.0) -> np.ndarray:
    """``arr`` extended to length ``n`` (returned as-is when already
    there — copy-on-write happens at patch time)."""
    if len(arr) == n:
        return arr
    out = np.full(n, fill, dtype=np.float64)
    out[:len(arr)] = arr
    return out


def _patch_transitions(snapshot: VIPSnapshot, mgraph: MutableGraph,
                       stale_rows: np.ndarray) -> Dict[int, np.ndarray]:
    """Dirty-row invalidation of the snapshot's transition-table slice:
    only entries whose degree changed (plus new vertices) are recomputed;
    everything else is carried forward bit-for-bit."""
    n = mgraph.num_vertices
    degrees = mgraph.degrees
    out: Dict[int, np.ndarray] = {}
    for key, tv in snapshot.vertex_transitions.items():
        fresh = _padded(tv, n, fill=1.0 if key < 0 else 0.0)
        if len(stale_rows) or n != len(tv):
            fresh = fresh.copy() if fresh is tv else fresh
            idx = stale_rows
            if n != len(tv):  # new vertices need real entries, not fill
                idx = np.union1d(stale_rows,
                                 np.arange(len(tv), n, dtype=np.int64))
            fresh[idx] = _vertex_transition_values(key, degrees[idx])
        out[key] = fresh
    return out


def _recompute_rows(mgraph: MutableGraph, rows: np.ndarray, tv: np.ndarray,
                    p_prev: np.ndarray) -> Tuple[np.ndarray, int]:
    """Hop values of ``rows`` on the current graph — the dense sweep's
    arithmetic restricted to those rows.

    Identical scalar sequence as :func:`~repro.vip.analytic._hop_dense`:
    per edge slot ``1 - t(v)·p(v)`` → ``max(·, 0)`` → ``log`` →
    per-segment ``np.add.reduceat`` (rows are sorted and duplicate-free on
    both the overlay and the compacted CSR, so each segment has the same
    operands, order, and length — same pairwise-sum tree) → ``exp`` →
    ``1 - ·`` → ``clip``.
    """
    counts, flat = mgraph.rows_concat(rows)
    values = np.zeros(len(rows), dtype=np.float64)
    nonempty = np.flatnonzero(counts > 0)
    if len(nonempty):
        vals = tv[flat] * p_prev[flat]
        np.subtract(1.0, vals, out=vals)
        np.maximum(vals, 0.0, out=vals)
        with np.errstate(divide="ignore"):
            np.log(vals, out=vals)
        offsets = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        row_log = np.add.reduceat(vals, offsets[nonempty])
        np.exp(row_log, out=row_log)
        np.subtract(1.0, row_log, out=row_log)
        values[nonempty] = row_log
    np.clip(values, 0.0, 1.0, out=values)
    return values, int(counts.sum())


def _full_refresh(mgraph: MutableGraph, initial: np.ndarray,
                  fanouts: Tuple[int, ...],
                  vtrans: Dict[int, np.ndarray],
                  stats: RefreshStats) -> VIPSnapshot:
    """Cutoff fallback: full evaluation on the materialized graph, with its
    transition table pre-populated from the patched snapshot entries (they
    are bit-identical to what the table would compute)."""
    graph = mgraph.materialize()
    table = transition_table(graph)
    for key, tv in vtrans.items():
        if key not in table._vertex:
            entry = tv.copy()
            entry.flags.writeable = False
            table._vertex[key] = entry
    result = vip_probabilities(graph, initial, fanouts)
    return VIPSnapshot(
        version=mgraph.version,
        initial=np.asarray(initial, dtype=np.float64),
        fanouts=fanouts,
        result=result,
        vertex_transitions=vtrans,
        num_vertices=mgraph.num_vertices,
        stats=stats,
    )


def incremental_vip(
    mgraph: MutableGraph,
    snapshot: VIPSnapshot,
    initial: Optional[np.ndarray] = None,
    *,
    churn_cutoff: float = CHURN_CUTOFF,
) -> VIPSnapshot:
    """Refresh a VIP evaluation after graph churn, touching O(churn) rows.

    Parameters
    ----------
    mgraph:
        The streaming graph; must be the one ``snapshot`` was taken on
        (its delta log must still cover ``snapshot.version``).
    snapshot:
        The consumer's previous evaluation (:func:`snapshot_vip` or a
        previous refresh).
    initial:
        New ``p[0]``; defaults to the snapshot's.  Seed-distribution drift
        is handled the same way graph churn is — rows whose ``p[0]``
        changed seed the hop-1 wave — so serving can refresh one call per
        window even when both the graph and the hot set moved.
    churn_cutoff:
        Fraction of the dense sweep's total edge volume
        (``num_hops * num_edges``) the refresh may touch, cumulatively
        across hops, before falling back to the full evaluation
        (``0`` forces full, ``1`` never falls back).

    Returns
    -------
    VIPSnapshot
        The refreshed snapshot; ``.result`` is **bit-identical** to
        ``vip_probabilities(mgraph.materialize(), initial, fanouts)`` and
        ``.stats`` records which path ran and how much it touched.
    """
    if not 0.0 <= churn_cutoff <= 1.0:
        raise ValueError(f"churn_cutoff must be in [0, 1], got {churn_cutoff}")
    n = mgraph.num_vertices
    m = max(mgraph.num_edges, 1)
    fanouts = snapshot.fanouts
    if initial is None:
        # Vertex growth since the snapshot: new vertices seed at p0 = 0.
        initial = _padded(snapshot.initial, n)
    p0 = np.asarray(initial, dtype=np.float64)
    if len(p0) != n:
        raise ValueError(
            f"initial must have one probability per vertex ({n}), got {len(p0)}"
        )

    dirty = mgraph.dirty_frontier(snapshot.version)
    deg_changed = mgraph.degree_changed(snapshot.version)
    p0_old = _padded(snapshot.initial, n)
    seed_changed = np.flatnonzero(p0 != p0_old)
    stats = RefreshStats(mode="incremental", dirty_rows=len(dirty))

    vtrans = _patch_transitions(snapshot, mgraph, deg_changed)
    if not len(dirty) and not len(seed_changed):
        # Nothing observable changed (mutations cancelled out, same seeds):
        # the previous result is already the answer.
        stats.mode = "noop"
        return VIPSnapshot(
            version=mgraph.version, initial=p0, fanouts=fanouts,
            result=VIPResult(total=_padded(snapshot.result.total, n),
                             hopwise=[_padded(h, n)
                                      for h in snapshot.result.hopwise],
                             initial=p0),
            vertex_transitions=vtrans, num_vertices=n, stats=stats,
        )

    hop_arrays: List[np.ndarray] = []
    changed_union = _EMPTY
    changed_prev = seed_changed
    p_prev = p0
    old_prev = p0_old
    for h, fanout in enumerate(fanouts):
        # Dirty rows are recomputed at every hop: their length changed, and
        # numpy's reductions sum pairwise, so even inserting an exact-zero
        # log term can regroup the *other* operands and move low-order bits.
        # Transition-stale vertices are different — the rows containing them
        # kept their length and operand order, and a source with p = 0
        # contributes 1 - t·0 = 1.0 → log = +0.0 bit-identically under the
        # old and new factor alike — so they only need recomputing where the
        # source is live under either hop array.  That filter is what keeps
        # hub-degree churn far from the seed distribution's reach cheap.
        if len(deg_changed):
            t_active = deg_changed[(p_prev[deg_changed] != 0.0)
                                   | (old_prev[deg_changed] != 0.0)]
        else:
            t_active = deg_changed
        rows = np.union1d(
            np.union1d(dirty, mgraph.in_rows_union(t_active)),
            mgraph.in_rows_union(changed_prev))
        old_h = _padded(snapshot.result.hopwise[h], n)
        if not len(rows):
            hop_arrays.append(old_h)
            changed_prev = _EMPTY
            p_prev = old_h
            old_prev = old_h
            continue
        tv = vtrans[_normalize_fanout(fanout)]
        values, edge_volume = _recompute_rows(mgraph, rows, tv, p_prev)
        stats.rows_recomputed += len(rows)
        stats.edges_touched += edge_volume
        # Cumulative gate against the dense sweep's total volume: per-hop
        # volume is bounded by m, so cutoff 1.0 can never trip and 0.0
        # trips on the first touched edge.
        if stats.edges_touched > churn_cutoff * (len(fanouts) * m):
            stats.mode = "full"
            return _full_refresh(mgraph, p0, fanouts, vtrans, stats)
        # Bitwise filter: only rows whose value actually moved propagate.
        moved = values != old_h[rows]
        changed = rows[moved]
        stats.rows_changed += len(changed)
        if len(changed):
            # Always copy: old_h must stay pristine (it is next hop's
            # old_prev in the activity filter).
            new_h = old_h.copy()
            new_h[changed] = values[moved]
            hop_arrays.append(new_h)
            changed_union = np.union1d(changed_union, changed)
        else:
            hop_arrays.append(old_h)
        changed_prev = changed
        p_prev = hop_arrays[-1]
        old_prev = old_h

    # Equation (2): replay the hop-ordered log accumulation on exactly the
    # rows where some hop value changed; all other totals carry over.
    total = _padded(snapshot.result.total, n)
    if len(changed_union):
        total = total.copy() if total is snapshot.result.total else total
        acc = np.zeros(len(changed_union), dtype=np.float64)
        for p_h in hop_arrays:
            with np.errstate(divide="ignore"):
                acc += np.log(np.maximum(1.0 - p_h[changed_union], 0.0))
        np.exp(acc, out=acc)
        np.subtract(1.0, acc, out=acc)
        np.clip(acc, 0.0, 1.0, out=acc)
        total[changed_union] = acc

    return VIPSnapshot(
        version=mgraph.version, initial=p0, fanouts=fanouts,
        result=VIPResult(total=total, hopwise=hop_arrays, initial=p0),
        vertex_transitions=vtrans, num_vertices=n, stats=stats,
    )
