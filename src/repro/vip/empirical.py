"""Empirical VIP estimation: simulated access counting and Monte Carlo.

Two estimators live here:

* :func:`simulate_access_counts` — the "sim." caching policy of Figure 2
  (Yang et al., GNNLab style): run the *real* sampler for a few epochs and
  count how often each vertex appears in a sampled neighborhood.
* :func:`montecarlo_inclusion_frequency` — a direct Monte-Carlo estimate of
  the paper's neighborhood-expansion random process (frontier expansion,
  exactly the process Proposition 1 analyzes); the test suite uses it to
  validate the analytic model.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sampling.neighbor import NeighborSampler, sample_neighbors
from repro.utils.rng import SeedLike, as_generator, derive_seed


def simulate_access_counts(
    graph: CSRGraph,
    train_idx: np.ndarray,
    fanouts: Sequence[int],
    batch_size: int,
    epochs: int = 2,
    seed: SeedLike = 0,
) -> np.ndarray:
    """Count per-vertex minibatch inclusions over simulated training epochs.

    Returns the number of minibatches whose sampled L-hop neighborhood
    (including the seeds) contained each vertex — the empirical analogue of
    VIP scaled by the number of minibatches.  This is both the "sim." policy
    of Figure 2 (with ``epochs=2``) and the "oracle" policy when fed the
    same trace the evaluation later measures.
    """
    train_idx = np.asarray(train_idx, dtype=np.int64)
    counts = np.zeros(graph.num_vertices, dtype=np.int64)
    if len(train_idx) == 0:
        return counts
    sampler = NeighborSampler(graph, fanouts, seed=derive_seed(seed, "sim"))
    for epoch in range(epochs):
        for mfg in sampler.batches(train_idx, batch_size, epoch=epoch, seed=seed):
            counts[mfg.n_id] += 1
    return counts


def montecarlo_inclusion_frequency(
    graph: CSRGraph,
    train_idx: np.ndarray,
    fanouts: Sequence[int],
    batch_size: int,
    trials: int = 1000,
    seed: SeedLike = 0,
    *,
    initial: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Monte-Carlo estimate of inclusion probabilities under the paper's
    random process.

    Per trial: draw a minibatch (uniformly without replacement from
    ``train_idx``, or per-vertex independently from ``initial`` if given),
    then repeatedly (i) sample ≤ ``f_h`` neighbors of every *frontier* vertex
    without replacement, (ii) advance the frontier to the union of sampled
    neighborhoods — the exact process of §3.1.  Returns the per-vertex
    fraction of trials in which it appeared in any hop set (or the seed set).
    """
    rng = as_generator(seed)
    train_idx = np.asarray(train_idx, dtype=np.int64)
    hits = np.zeros(graph.num_vertices, dtype=np.int64)

    for _ in range(trials):
        if initial is not None:
            mask = rng.random(graph.num_vertices) < initial
            frontier = np.flatnonzero(mask).astype(np.int64)
        else:
            b = min(batch_size, len(train_idx))
            frontier = rng.choice(train_idx, size=b, replace=False)
        included = np.zeros(graph.num_vertices, dtype=bool)
        included[frontier] = True
        for fanout in fanouts:
            if len(frontier) == 0:
                break
            _, src = sample_neighbors(graph, frontier, int(fanout), rng)
            frontier = np.unique(src)
            included[frontier] = True
        hits += included
    return hits / float(trials)
