"""Analytic vertex-inclusion probabilities (Proposition 1 of the paper).

Models the node-wise neighborhood-expansion random process: starting from a
random minibatch, each hop samples at most ``f_h`` neighbors per vertex
uniformly without replacement, independently across vertices and hops.  The
probability that vertex ``u`` is sampled exactly ``h`` hops out satisfies

    p[h](u) = 1 - prod_{v in N1(u)} (1 - t_h(u, v) * p[h-1](v)),      (3)

with ``t_h(u, v) = min(1, f_h / d(v))`` for uniform GraphSAGE sampling, and
the overall inclusion probability is

    p(u) = 1 - prod_{h=1..L} (1 - p[h](u)).                           (2)

Two structural facts make the recursion much cheaper than a full-graph
sweep, and :func:`vip_probabilities` exploits both:

* **Active sets** — ``p[0]`` is nonzero only on a training set (one
  partition's, for the partition-wise vectors), and ``p[h]`` is nonzero only
  on the h-hop ball around it.  Each hop therefore needs to touch only the
  CSR rows *incident to the current frontier* (the vertices whose
  probability is nonzero); everything else is exactly zero and stays zero.
  Hops whose frontier covers most of the edge set fall back to the dense
  row sweep — same arithmetic, so the outputs are bit-identical either way.
* **Vertex factoring** — under the uniform sampling model the per-edge
  factor ``1 - t_h(u, v) * p[h-1](v)`` depends only on the *source* ``v``,
  so each hop computes one O(N) per-vertex array and gathers it along the
  edges instead of running O(M) transition/multiply passes per hop.

The reference evaluation (one ``log1p``-style sum per CSR row over all M
edges, recomputing transition probabilities per hop) is preserved verbatim
as :func:`vip_probabilities_dense`; a hypothesis parity suite asserts the
active-set path reproduces it bit-for-bit, and the perf harness
(``benchmarks/perf``) tracks the speedup.

Transition probabilities themselves are cached per graph in a
:class:`TransitionTable` (one entry per distinct fanout), so the K
partition-wise VIP computations — and every serving-time vip-refresh — share
≤ L transition computations per graph instead of paying K×L identical O(M)
edge passes.

Partition-wise VIP vectors (one per machine, seeded by that machine's local
training set) drive both the remote-feature cache and the local CPU/GPU
ordering (paper §3.2, §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.interface import Partition
from repro.utils.validation import check_probability_vector

#: Fraction of the graph's directed edges the frontier's incident rows may
#: cover before a hop falls back to the dense row sweep.  Below the cutoff
#: the sparse path (enumerate only rows adjacent to the frontier) is a
#: clear win; above it the dense sweep's sequential memory access wins.
SPARSE_HOP_CUTOFF = 0.05


@dataclass
class VIPResult:
    """VIP vectors for one starting distribution.

    Attributes
    ----------
    total:
        ``p(u)`` — probability of inclusion in the sampled L-hop
        neighborhood of one minibatch (equation 2).
    hopwise:
        ``p[h](u)`` for h = 1..L (equation 3); ``hopwise[0]`` is hop 1.
    initial:
        ``p[0](u)`` — the minibatch membership probabilities.
    """

    total: np.ndarray
    hopwise: List[np.ndarray]
    initial: np.ndarray

    @property
    def num_hops(self) -> int:
        return len(self.hopwise)

    @property
    def access(self) -> np.ndarray:
        """Probability the vertex is touched at all by one minibatch:
        membership in the minibatch itself or in any sampled hop,
        ``1 - (1 - p[0]) * prod_h (1 - p[h])``.

        This is the ranking quantity for *local* storage decisions (a
        machine reads a training vertex's features whenever it seeds a
        batch); for remote vertices ``p[0] = 0`` and it coincides with
        equation (2)'s ``p(u)``.
        """
        return 1.0 - (1.0 - self.initial) * (1.0 - self.total)


def uniform_minibatch_probability(
    num_vertices: int,
    train_idx: np.ndarray,
    batch_size: int,
) -> np.ndarray:
    """``p[0]`` for uniform minibatch sampling without replacement.

    ``p[0](u) = B / |T|`` for training vertices, 0 otherwise (paper §3.1).
    ``B`` is clipped to ``|T|`` so tiny partitions stay valid.
    """
    train_idx = np.asarray(train_idx, dtype=np.int64)
    p0 = np.zeros(num_vertices, dtype=np.float64)
    if len(train_idx):
        p0[train_idx] = min(batch_size, len(train_idx)) / len(train_idx)
    return p0


# ----------------------------------------------------------------------
# Shared transition cache.

def _normalize_fanout(fanout: int) -> int:
    fanout = int(fanout)
    if fanout == 0:
        raise ValueError("fanout must be non-zero (-1 means full expansion)")
    return -1 if fanout < 0 else fanout


def _compute_edge_transition(graph: CSRGraph, fanout: int) -> np.ndarray:
    """Uncached per-edge ``t(u, v) = min(1, f / d(v))`` (the seed
    implementation — :func:`vip_probabilities_dense` and the dense side of
    the perf harness use this directly so the baseline keeps paying the
    per-invocation O(M) pass it always did)."""
    fanout = _normalize_fanout(fanout)
    deg = graph.degrees[graph.indices].astype(np.float64)
    if fanout < 0:  # full neighborhood expansion
        return np.ones(graph.num_edges, dtype=np.float64)
    with np.errstate(divide="ignore"):
        t = fanout / np.maximum(deg, 1.0)
    return np.minimum(t, 1.0)


class TransitionTable:
    """Per-graph cache of transition probabilities and hot-path scratch.

    One table is attached lazily to each :class:`CSRGraph` (see
    :func:`transition_table`); because graphs are immutable, every cached
    quantity stays valid for the graph's lifetime:

    * ``edge_transition(f)`` — the ``(M,)`` per-edge array of
      :func:`transition_probabilities`, computed at most once per distinct
      fanout per graph.  ``partitionwise_vip``'s K seeded recursions, the
      Planner's vip stage, and every serving-time vip-refresh share these
      entries, collapsing K×L identical O(M) passes into ≤ L.
    * ``vertex_transition(f)`` — the ``(N,)`` per-vertex factorization
      ``min(1, f / d(v))`` the active-set path gathers along edges (the
      per-edge array is the gather of this one).
    * reduceat row starts, the edge-sized gather scratch, and the incoming
      adjacency used for frontier expansion on directed graphs.

    Cached arrays are handed out read-only; treat them as borrowed views.
    """

    def __init__(self, graph: CSRGraph):
        self.graph = graph
        #: Structure version this table was built against; checked by
        #: :func:`transition_table` so an in-place graph mutation (which
        #: must call :meth:`CSRGraph.bump_version`) can never silently
        #: serve stale transitions.
        self.version = graph.version
        self._edge: Dict[int, np.ndarray] = {}
        self._vertex: Dict[int, np.ndarray] = {}
        #: Cache-effectiveness counters (the transition-dedup tests and the
        #: perf harness read these).
        self.edge_computes = 0
        self.edge_hits = 0
        self.vertex_computes = 0
        self.vertex_hits = 0
        self._degf: Optional[np.ndarray] = None
        self._edge_scratch: Optional[np.ndarray] = None
        self._row_ids: Optional[np.ndarray] = None
        self._row_starts: Optional[np.ndarray] = None
        self._incoming: Optional[CSRGraph] = None

    # -- transition entries --------------------------------------------
    def edge_transition(self, fanout: int) -> np.ndarray:
        """Per-edge transition probabilities, cached per distinct fanout."""
        key = _normalize_fanout(fanout)
        t = self._edge.get(key)
        if t is None:
            self.edge_computes += 1
            t = _compute_edge_transition(self.graph, key)
            t.flags.writeable = False
            self._edge[key] = t
        else:
            self.edge_hits += 1
        return t

    def vertex_transition(self, fanout: int) -> np.ndarray:
        """Per-vertex ``min(1, f / d(v))`` — the source-only factorization
        of the uniform transition model (its edge gather equals
        :meth:`edge_transition` bit-for-bit)."""
        key = _normalize_fanout(fanout)
        t = self._vertex.get(key)
        if t is None:
            self.vertex_computes += 1
            if self._degf is None:
                self._degf = self.graph.degrees.astype(np.float64)
            if key < 0:
                t = np.ones(self.graph.num_vertices, dtype=np.float64)
            else:
                # Same elementary ops as _compute_edge_transition, applied
                # per vertex instead of per edge slot: gathering the result
                # along ``indices`` is bit-identical to the per-edge pass.
                t = np.minimum(key / np.maximum(self._degf, 1.0), 1.0)
            t.flags.writeable = False
            self._vertex[key] = t
        else:
            self.vertex_hits += 1
        return t

    # -- scratch / structure memos -------------------------------------
    def edge_scratch(self) -> np.ndarray:
        """Reusable ``(M,)`` float64 buffer for edge-level gathers."""
        if self._edge_scratch is None:
            self._edge_scratch = np.empty(self.graph.num_edges,
                                          dtype=np.float64)
        return self._edge_scratch

    def nonempty_rows(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(rows, starts)`` of the graph's non-empty CSR rows — the
        reduceat segment boundaries, structure-constant per graph."""
        if self._row_ids is None:
            lengths = np.diff(self.graph.indptr)
            self._row_ids = np.flatnonzero(lengths > 0)
            self._row_starts = self.graph.indptr[self._row_ids]
        return self._row_ids, self._row_starts

    def incoming(self) -> CSRGraph:
        """Graph whose row ``v`` lists the rows of ``graph`` containing
        ``v`` — what frontier expansion needs.  The graph itself for
        undirected graphs; the transpose (built once) otherwise."""
        if self._incoming is None:
            self._incoming = (self.graph if self.graph.is_undirected()
                              else self.graph.reverse())
        return self._incoming


def transition_table(graph: CSRGraph) -> TransitionTable:
    """The graph's (lazily created) shared :class:`TransitionTable`.

    The table pins the graph's structure-version token at creation; a
    version mismatch (an in-place mutation declared via
    :meth:`CSRGraph.bump_version`, which also drops the attached table —
    this check additionally catches tables stashed elsewhere) invalidates
    the table and builds a fresh one instead of serving stale transitions.
    """
    table = graph._transition_table
    if table is None or table.version != graph.version:
        table = TransitionTable(graph)
        graph._transition_table = table
    return table


def transition_probabilities(graph: CSRGraph, fanout: int) -> np.ndarray:
    """Per-edge ``t(u, v) = min(1, f / d(v))`` aligned with ``graph``'s CSR.

    For edge slot ``e`` with row ``u`` and column ``v = indices[e]``, the
    value is the probability that ``v`` picks ``u`` among its neighbors when
    sampling ``fanout`` of them without replacement.  (For undirected graphs
    the CSR row of ``u`` enumerates exactly the ``v`` with ``u ∈ N1(v)``.)

    Cached per ``(graph, fanout)`` in the graph's :class:`TransitionTable`;
    the returned array is shared and read-only — copy before mutating.
    """
    return transition_table(graph).edge_transition(fanout)


# ----------------------------------------------------------------------
# Proposition 1 — dense reference evaluation (the seed implementation).

def _row_log_products(indptr: np.ndarray, edge_log: np.ndarray) -> np.ndarray:
    """Sum ``edge_log`` per CSR row (empty rows produce 0)."""
    n = len(indptr) - 1
    out = np.zeros(n, dtype=np.float64)
    lengths = np.diff(indptr)
    rows = np.flatnonzero(lengths > 0)
    if len(rows):
        out[rows] = np.add.reduceat(edge_log, indptr[rows])
    return out


def _check_vip_inputs(graph, initial, fanouts, transition):
    p0 = check_probability_vector(initial, "initial")
    if len(p0) != graph.num_vertices:
        raise ValueError("initial must have one probability per vertex")
    if transition is not None and len(transition) != len(fanouts):
        raise ValueError("transition must supply one edge array per hop")
    return p0


def vip_probabilities_dense(
    graph: CSRGraph,
    initial: np.ndarray,
    fanouts: Sequence[int],
    *,
    transition: Optional[List[np.ndarray]] = None,
) -> VIPResult:
    """Reference Proposition-1 evaluation: one full O(M) edge pass per hop,
    transition probabilities recomputed per invocation.

    This is the seed implementation, kept verbatim as the parity oracle for
    :func:`vip_probabilities` (which must reproduce it bit-for-bit) and as
    the baseline the perf harness measures speedups against.
    """
    p_prev = _check_vip_inputs(graph, initial, fanouts, transition)

    indptr, indices = graph.indptr, graph.indices
    hopwise: List[np.ndarray] = []
    log_not_total = np.zeros(graph.num_vertices, dtype=np.float64)

    for h, fanout in enumerate(fanouts):
        if transition is not None:
            t = np.asarray(transition[h], dtype=np.float64)
            if t.shape != (graph.num_edges,):
                raise ValueError(f"transition[{h}] must have one entry per edge")
        else:
            t = _compute_edge_transition(graph, int(fanout))
        # prod over v in N1(u) of (1 - t(u,v) p[h-1](v)), in log space.
        prod_arg = 1.0 - t * p_prev[indices]
        with np.errstate(divide="ignore"):
            edge_log = np.log(np.maximum(prod_arg, 0.0))
        row_log = _row_log_products(indptr, edge_log)
        p_h = 1.0 - np.exp(row_log)
        np.clip(p_h, 0.0, 1.0, out=p_h)
        hopwise.append(p_h)
        with np.errstate(divide="ignore"):
            log_not_total += np.log(np.maximum(1.0 - p_h, 0.0))
        p_prev = p_h

    total = 1.0 - np.exp(log_not_total)
    np.clip(total, 0.0, 1.0, out=total)
    return VIPResult(total=total, hopwise=hopwise, initial=np.asarray(initial, dtype=np.float64))


# ----------------------------------------------------------------------
# Proposition 1 — active-set evaluation (bit-identical, frontier-driven).

def _hop_dense(table: TransitionTable, p_prev: np.ndarray, fanout: int,
               t_edges: Optional[np.ndarray]) -> np.ndarray:
    """One full-row hop sweep, with the per-vertex transition factorization
    and reusable scratch.  Values match the reference hop exactly: the
    per-edge factors are gathers of identically computed per-vertex terms
    (or the identical per-edge product), and the per-row sums run over the
    same segments via the same ``np.add.reduceat``."""
    graph = table.graph
    edge_vals = table.edge_scratch()
    # mode="clip" skips the bounds-check path of np.take — ~2x faster and
    # bit-identical, since CSR indices are validated in-range at build time.
    if t_edges is None:
        tv = table.vertex_transition(fanout)
        gv = tv * p_prev
        np.subtract(1.0, gv, out=gv)
        np.maximum(gv, 0.0, out=gv)
        with np.errstate(divide="ignore"):
            np.log(gv, out=gv)
        np.take(gv, graph.indices, out=edge_vals, mode="clip")
    else:
        np.take(p_prev, graph.indices, out=edge_vals, mode="clip")
        np.multiply(t_edges, edge_vals, out=edge_vals)
        np.subtract(1.0, edge_vals, out=edge_vals)
        np.maximum(edge_vals, 0.0, out=edge_vals)
        with np.errstate(divide="ignore"):
            np.log(edge_vals, out=edge_vals)
    rows, starts = table.nonempty_rows()
    p_h = np.zeros(graph.num_vertices, dtype=np.float64)
    if len(rows):
        row_prod = np.add.reduceat(edge_vals, starts)
        np.exp(row_prod, out=row_prod)
        np.subtract(1.0, row_prod, out=row_prod)
        p_h[rows] = row_prod
    np.clip(p_h, 0.0, 1.0, out=p_h)
    return p_h


def _segment_offsets(counts: np.ndarray) -> np.ndarray:
    out = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=out[1:])
    return out


def _expand_rows(indptr: np.ndarray, rows: np.ndarray,
                 counts: np.ndarray) -> np.ndarray:
    """Positions of all CSR entries of ``rows`` (row-major, in-row order)."""
    offsets = _segment_offsets(counts)
    total = int(offsets[-1])
    rel = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], counts)
    return np.repeat(indptr[rows], counts) + rel


def _hop_sparse(table: TransitionTable, p_prev: np.ndarray,
                frontier: np.ndarray, fanout: int,
                t_edges: Optional[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """One frontier-driven hop: touch only the CSR rows incident to the
    active set.  Returns ``(p_h, candidate_rows)``.

    Candidate rows are found by expanding the frontier through the incoming
    adjacency; each candidate row is then evaluated over its *entire*
    adjacency list (inactive neighbors contribute an exact ``log 1 = 0``
    term), so every per-row sum sees the same operand sequence — hence the
    same floating-point reduction — as the dense reference.
    """
    graph = table.graph
    n = graph.num_vertices
    inc = table.incoming()
    reached = inc.indices[_expand_rows(inc.indptr, frontier,
                                       inc.degrees[frontier])]
    mask = np.zeros(n, dtype=bool)
    mask[reached] = True
    rows = np.flatnonzero(mask)
    p_h = np.zeros(n, dtype=np.float64)
    if len(rows) == 0:
        return p_h, rows
    counts = graph.degrees[rows]
    edge_pos = _expand_rows(graph.indptr, rows, counts)
    if t_edges is None:
        tv = table.vertex_transition(fanout)
        # Per-vertex log factors on the frontier only; everything else is
        # an exact +0.0 (log 1), contributed through the zero fill.
        gv = np.zeros(n, dtype=np.float64)
        with np.errstate(divide="ignore"):
            gv[frontier] = np.log(
                np.maximum(1.0 - tv[frontier] * p_prev[frontier], 0.0)
            )
        edge_log = np.take(gv, np.take(graph.indices, edge_pos, mode="clip"),
                           mode="clip")
    else:
        with np.errstate(divide="ignore"):
            edge_log = np.log(np.maximum(
                1.0 - t_edges[edge_pos] * p_prev[graph.indices[edge_pos]], 0.0
            ))
    # Candidate rows are non-empty by construction (each contains at least
    # one frontier vertex), so the segment offsets are valid reduceat starts.
    starts = _segment_offsets(counts)[:-1]
    p_h[rows] = 1.0 - np.exp(np.add.reduceat(edge_log, starts))
    np.clip(p_h, 0.0, 1.0, out=p_h)
    return p_h, rows


def vip_probabilities(
    graph: CSRGraph,
    initial: np.ndarray,
    fanouts: Sequence[int],
    *,
    transition: Optional[List[np.ndarray]] = None,
    sparse_cutoff: float = SPARSE_HOP_CUTOFF,
) -> VIPResult:
    """Evaluate Proposition 1 for one starting distribution.

    Carries a frontier of vertices whose probability is nonzero and touches
    only the CSR rows incident to it per hop, falling back to the dense row
    sweep once the frontier's incident edges exceed ``sparse_cutoff`` of the
    edge set.  Outputs are bit-identical to
    :func:`vip_probabilities_dense` for every input (enforced by the
    hypothesis parity suite in ``tests/vip/test_active_set.py``); only the
    cost changes — seed distributions confined to one partition's training
    set (or a serving hot set) no longer pay full-graph cost per hop, and
    transition probabilities come from the graph's shared
    :class:`TransitionTable` instead of being recomputed per call.

    Parameters
    ----------
    graph:
        Graph being sampled (undirected in all paper experiments).  For a
        directed graph pass the graph whose CSR row ``u`` lists the vertices
        ``v`` that can sample ``u`` (the reverse of the sampling direction).
    initial:
        ``p[0]`` — per-vertex minibatch membership probabilities.
    fanouts:
        Per-hop fanouts, hop 1 first; ``-1`` = full expansion.
    transition:
        Optional per-hop per-edge transition probabilities (overrides the
        uniform GraphSAGE model) — accommodates non-uniform samplers as in
        the remark after Proposition 1.
    sparse_cutoff:
        Frontier-size threshold for the sparse hop path, as a fraction of
        the edge count (0 forces dense sweeps, 1 forces sparse hops; the
        parity tests pin both extremes).

    Returns
    -------
    VIPResult
    """
    p_prev = _check_vip_inputs(graph, initial, fanouts, transition)
    table = transition_table(graph)
    n, m = graph.num_vertices, graph.num_edges
    deg = graph.degrees

    hopwise: List[np.ndarray] = []
    log_not_total = np.zeros(n, dtype=np.float64)
    # ``frontier is None`` means "assume dense": skip frontier bookkeeping
    # once a hop's support has grown past any chance of a sparse follow-up.
    frontier: Optional[np.ndarray] = np.flatnonzero(p_prev)

    for h, fanout in enumerate(fanouts):
        t_edges = None
        if transition is not None:
            t_edges = np.asarray(transition[h], dtype=np.float64)
            if t_edges.shape != (m,):
                raise ValueError(f"transition[{h}] must have one entry per edge")
        sparse = (frontier is not None
                  and int(deg[frontier].sum()) <= sparse_cutoff * m)
        if sparse:
            p_h, touched = _hop_sparse(table, p_prev, frontier, fanout, t_edges)
            nonzero = touched[p_h[touched] > 0.0]
            # Accumulate (2)'s log product only where p_h is nonzero — the
            # remaining terms are exact log 1 = +0.0, which adding skips
            # without changing a single bit.
            with np.errstate(divide="ignore"):
                log_not_total[nonzero] += np.log(
                    np.maximum(1.0 - p_h[nonzero], 0.0)
                )
            frontier = nonzero
        else:
            p_h = _hop_dense(table, p_prev, fanout, t_edges)
            with np.errstate(divide="ignore"):
                log_not_total += np.log(np.maximum(1.0 - p_h, 0.0))
            # Recompute the frontier only while the support is small enough
            # that the next hop could plausibly take the sparse path.
            if np.count_nonzero(p_h) <= sparse_cutoff * n:
                frontier = np.flatnonzero(p_h)
            else:
                frontier = None
        hopwise.append(p_h)
        p_prev = p_h

    total = 1.0 - np.exp(log_not_total)
    np.clip(total, 0.0, 1.0, out=total)
    return VIPResult(total=total, hopwise=hopwise,
                     initial=np.asarray(initial, dtype=np.float64))


def vip_for_training_set(
    graph: CSRGraph,
    train_idx: np.ndarray,
    fanouts: Sequence[int],
    batch_size: int,
) -> VIPResult:
    """VIP under uniform minibatches drawn from ``train_idx``."""
    p0 = uniform_minibatch_probability(graph.num_vertices, train_idx, batch_size)
    return vip_probabilities(graph, p0, fanouts)


def _partitionwise(graph, partition, train_idx, fanouts, batch_size, vip_fn):
    train_idx = np.asarray(train_idx, dtype=np.int64)
    owner = partition.assignment[train_idx]
    out = np.zeros((partition.num_parts, graph.num_vertices), dtype=np.float64)
    for k in range(partition.num_parts):
        local_train = train_idx[owner == k]
        if len(local_train) == 0:
            continue
        p0 = uniform_minibatch_probability(graph.num_vertices, local_train,
                                           batch_size)
        res = vip_fn(graph, p0, fanouts)
        # Use the full access probability (includes minibatch membership):
        # identical to equation (2) for remote vertices, and the correct
        # ranking for local CPU/GPU placement of training vertices.
        out[k] = res.access
    return out


def partitionwise_vip(
    graph: CSRGraph,
    partition: Partition,
    train_idx: np.ndarray,
    fanouts: Sequence[int],
    batch_size: int,
) -> np.ndarray:
    """Partition-wise VIP matrix ``P`` of shape ``(K, N)``.

    Row ``k`` is the VIP vector seeded by partition ``k``'s local training
    vertices (``p[0]_k(u) = B / |T_k|`` on ``T_k``), i.e. the probability
    that machine ``k`` needs vertex ``u`` for one of its minibatches.  This
    is the quantity that ranks both remote-cache candidates and the local
    CPU/GPU split (paper §3.2).

    Each row runs the active-set recursion; all K rows share the graph's
    :class:`TransitionTable`, so transition probabilities are computed at
    most once per distinct fanout for the whole matrix.
    """
    return _partitionwise(graph, partition, train_idx, fanouts, batch_size,
                          vip_probabilities)


def partitionwise_vip_dense(
    graph: CSRGraph,
    partition: Partition,
    train_idx: np.ndarray,
    fanouts: Sequence[int],
    batch_size: int,
) -> np.ndarray:
    """Seed-implementation partition-wise VIP: K independent dense
    recursions, transitions recomputed per hop per partition.  The perf
    harness's ``preprocess.vip`` baseline and the parity oracle for
    :func:`partitionwise_vip` (bit-identical matrices)."""
    return _partitionwise(graph, partition, train_idx, fanouts, batch_size,
                          vip_probabilities_dense)


def expected_remote_volume(
    vip_matrix: np.ndarray,
    partition: Partition,
    steps_per_epoch: np.ndarray,
    cached: Optional[np.ndarray] = None,
) -> float:
    """Expected per-epoch remote-vertex fetch count implied by VIP values.

    Machine ``k`` fetches vertex ``u`` in a given minibatch with probability
    ``P[k, u]`` if ``u`` is remote and not cached; summing over the epoch's
    minibatches gives the expected communication volume the caching policy
    minimizes (§3.2 "Communication reduction").

    Evaluated as one vectorized pass over the ``(K, N)`` matrix: the
    owner one-hot matrix is materialized once, instead of allocating a
    fresh N-length remote mask per machine.

    Parameters
    ----------
    vip_matrix:
        ``(K, N)`` partition-wise VIP values.
    steps_per_epoch:
        ``(K,)`` minibatch count per machine per epoch.
    cached:
        Optional boolean ``(K, N)`` cache membership.
    """
    vip_matrix = np.asarray(vip_matrix, dtype=np.float64)
    if vip_matrix.ndim != 2:
        raise ValueError(f"vip_matrix must be 2-D (K, N), got {vip_matrix.shape}")
    K, N = vip_matrix.shape
    owner = partition.assignment
    if owner.shape != (N,):
        raise ValueError(
            f"vip_matrix has {N} columns but the partition covers "
            f"{owner.shape[0]} vertices"
        )
    steps = np.asarray(steps_per_epoch, dtype=np.float64)
    if steps.shape != (K,):
        raise ValueError(f"steps_per_epoch must have shape ({K},), got {steps.shape}")
    local = owner[np.newaxis, :] == np.arange(K)[:, np.newaxis]  # one-hot pass
    contrib = np.where(local, 0.0, vip_matrix)
    if cached is not None:
        if cached.shape != (K, N):
            raise ValueError(f"cached must have shape ({K}, {N}), got {cached.shape}")
        contrib = np.where(cached, 0.0, contrib)
    return float(steps @ contrib.sum(axis=1))
