"""Analytic vertex-inclusion probabilities (Proposition 1 of the paper).

Models the node-wise neighborhood-expansion random process: starting from a
random minibatch, each hop samples at most ``f_h`` neighbors per vertex
uniformly without replacement, independently across vertices and hops.  The
probability that vertex ``u`` is sampled exactly ``h`` hops out satisfies

    p[h](u) = 1 - prod_{v in N1(u)} (1 - t_h(u, v) * p[h-1](v)),      (3)

with ``t_h(u, v) = min(1, f_h / d(v))`` for uniform GraphSAGE sampling, and
the overall inclusion probability is

    p(u) = 1 - prod_{h=1..L} (1 - p[h](u)).                           (2)

The recursion is evaluated in O(L(M+N)) using CSR edge arrays directly: the
product over neighbors becomes a ``log1p`` sum per CSR row (a ``reduceat``
over contiguous segments), never materializing dense intermediates.

Partition-wise VIP vectors (one per machine, seeded by that machine's local
training set) drive both the remote-feature cache and the local CPU/GPU
ordering (paper §3.2, §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.interface import Partition
from repro.utils.validation import check_probability_vector


@dataclass
class VIPResult:
    """VIP vectors for one starting distribution.

    Attributes
    ----------
    total:
        ``p(u)`` — probability of inclusion in the sampled L-hop
        neighborhood of one minibatch (equation 2).
    hopwise:
        ``p[h](u)`` for h = 1..L (equation 3); ``hopwise[0]`` is hop 1.
    initial:
        ``p[0](u)`` — the minibatch membership probabilities.
    """

    total: np.ndarray
    hopwise: List[np.ndarray]
    initial: np.ndarray

    @property
    def num_hops(self) -> int:
        return len(self.hopwise)

    @property
    def access(self) -> np.ndarray:
        """Probability the vertex is touched at all by one minibatch:
        membership in the minibatch itself or in any sampled hop,
        ``1 - (1 - p[0]) * prod_h (1 - p[h])``.

        This is the ranking quantity for *local* storage decisions (a
        machine reads a training vertex's features whenever it seeds a
        batch); for remote vertices ``p[0] = 0`` and it coincides with
        equation (2)'s ``p(u)``.
        """
        return 1.0 - (1.0 - self.initial) * (1.0 - self.total)


def uniform_minibatch_probability(
    num_vertices: int,
    train_idx: np.ndarray,
    batch_size: int,
) -> np.ndarray:
    """``p[0]`` for uniform minibatch sampling without replacement.

    ``p[0](u) = B / |T|`` for training vertices, 0 otherwise (paper §3.1).
    ``B`` is clipped to ``|T|`` so tiny partitions stay valid.
    """
    train_idx = np.asarray(train_idx, dtype=np.int64)
    p0 = np.zeros(num_vertices, dtype=np.float64)
    if len(train_idx):
        p0[train_idx] = min(batch_size, len(train_idx)) / len(train_idx)
    return p0


def transition_probabilities(graph: CSRGraph, fanout: int) -> np.ndarray:
    """Per-edge ``t(u, v) = min(1, f / d(v))`` aligned with ``graph``'s CSR.

    For edge slot ``e`` with row ``u`` and column ``v = indices[e]``, the
    value is the probability that ``v`` picks ``u`` among its neighbors when
    sampling ``fanout`` of them without replacement.  (For undirected graphs
    the CSR row of ``u`` enumerates exactly the ``v`` with ``u ∈ N1(v)``.)
    """
    if fanout == 0:
        raise ValueError("fanout must be non-zero (-1 means full expansion)")
    deg = graph.degrees[graph.indices].astype(np.float64)
    if fanout < 0:  # full neighborhood expansion
        return np.ones(graph.num_edges, dtype=np.float64)
    with np.errstate(divide="ignore"):
        t = fanout / np.maximum(deg, 1.0)
    return np.minimum(t, 1.0)


def _row_log_products(indptr: np.ndarray, edge_log: np.ndarray) -> np.ndarray:
    """Sum ``edge_log`` per CSR row (empty rows produce 0)."""
    n = len(indptr) - 1
    out = np.zeros(n, dtype=np.float64)
    lengths = np.diff(indptr)
    rows = np.flatnonzero(lengths > 0)
    if len(rows):
        out[rows] = np.add.reduceat(edge_log, indptr[rows])
    return out


def vip_probabilities(
    graph: CSRGraph,
    initial: np.ndarray,
    fanouts: Sequence[int],
    *,
    transition: Optional[List[np.ndarray]] = None,
) -> VIPResult:
    """Evaluate Proposition 1 for one starting distribution.

    Parameters
    ----------
    graph:
        Graph being sampled (undirected in all paper experiments).  For a
        directed graph pass the graph whose CSR row ``u`` lists the vertices
        ``v`` that can sample ``u`` (the reverse of the sampling direction).
    initial:
        ``p[0]`` — per-vertex minibatch membership probabilities.
    fanouts:
        Per-hop fanouts, hop 1 first; ``-1`` = full expansion.
    transition:
        Optional per-hop per-edge transition probabilities (overrides the
        uniform GraphSAGE model) — accommodates non-uniform samplers as in
        the remark after Proposition 1.

    Returns
    -------
    VIPResult
    """
    p_prev = check_probability_vector(initial, "initial")
    if len(p_prev) != graph.num_vertices:
        raise ValueError("initial must have one probability per vertex")
    if transition is not None and len(transition) != len(fanouts):
        raise ValueError("transition must supply one edge array per hop")

    indptr, indices = graph.indptr, graph.indices
    hopwise: List[np.ndarray] = []
    log_not_total = np.zeros(graph.num_vertices, dtype=np.float64)

    for h, fanout in enumerate(fanouts):
        if transition is not None:
            t = np.asarray(transition[h], dtype=np.float64)
            if t.shape != (graph.num_edges,):
                raise ValueError(f"transition[{h}] must have one entry per edge")
        else:
            t = transition_probabilities(graph, int(fanout))
        # prod over v in N1(u) of (1 - t(u,v) p[h-1](v)), in log space.
        prod_arg = 1.0 - t * p_prev[indices]
        with np.errstate(divide="ignore"):
            edge_log = np.log(np.maximum(prod_arg, 0.0))
        row_log = _row_log_products(indptr, edge_log)
        p_h = 1.0 - np.exp(row_log)
        np.clip(p_h, 0.0, 1.0, out=p_h)
        hopwise.append(p_h)
        with np.errstate(divide="ignore"):
            log_not_total += np.log(np.maximum(1.0 - p_h, 0.0))
        p_prev = p_h

    total = 1.0 - np.exp(log_not_total)
    np.clip(total, 0.0, 1.0, out=total)
    return VIPResult(total=total, hopwise=hopwise, initial=np.asarray(initial, dtype=np.float64))


def vip_for_training_set(
    graph: CSRGraph,
    train_idx: np.ndarray,
    fanouts: Sequence[int],
    batch_size: int,
) -> VIPResult:
    """VIP under uniform minibatches drawn from ``train_idx``."""
    p0 = uniform_minibatch_probability(graph.num_vertices, train_idx, batch_size)
    return vip_probabilities(graph, p0, fanouts)


def partitionwise_vip(
    graph: CSRGraph,
    partition: Partition,
    train_idx: np.ndarray,
    fanouts: Sequence[int],
    batch_size: int,
) -> np.ndarray:
    """Partition-wise VIP matrix ``P`` of shape ``(K, N)``.

    Row ``k`` is the VIP vector seeded by partition ``k``'s local training
    vertices (``p[0]_k(u) = B / |T_k|`` on ``T_k``), i.e. the probability
    that machine ``k`` needs vertex ``u`` for one of its minibatches.  This
    is the quantity that ranks both remote-cache candidates and the local
    CPU/GPU split (paper §3.2).
    """
    train_idx = np.asarray(train_idx, dtype=np.int64)
    owner = partition.assignment[train_idx]
    out = np.zeros((partition.num_parts, graph.num_vertices), dtype=np.float64)
    for k in range(partition.num_parts):
        local_train = train_idx[owner == k]
        if len(local_train) == 0:
            continue
        res = vip_for_training_set(graph, local_train, fanouts, batch_size)
        # Use the full access probability (includes minibatch membership):
        # identical to equation (2) for remote vertices, and the correct
        # ranking for local CPU/GPU placement of training vertices.
        out[k] = res.access
    return out


def expected_remote_volume(
    vip_matrix: np.ndarray,
    partition: Partition,
    steps_per_epoch: np.ndarray,
    cached: Optional[np.ndarray] = None,
) -> float:
    """Expected per-epoch remote-vertex fetch count implied by VIP values.

    Machine ``k`` fetches vertex ``u`` in a given minibatch with probability
    ``P[k, u]`` if ``u`` is remote and not cached; summing over the epoch's
    minibatches gives the expected communication volume the caching policy
    minimizes (§3.2 "Communication reduction").

    Parameters
    ----------
    vip_matrix:
        ``(K, N)`` partition-wise VIP values.
    steps_per_epoch:
        ``(K,)`` minibatch count per machine per epoch.
    cached:
        Optional boolean ``(K, N)`` cache membership.
    """
    K, N = vip_matrix.shape
    owner = partition.assignment
    total = 0.0
    for k in range(K):
        remote = owner != k
        if cached is not None:
            remote = remote & ~cached[k]
        total += float(steps_per_epoch[k]) * float(vip_matrix[k, remote].sum())
    return total
