"""Vertex-inclusion-probability (VIP) analysis and caching policies.

The paper's core contribution: an analytical model (Proposition 1) of which
vertices a machine's minibatches will touch during node-wise neighborhood
sampling, and the maximum-likelihood static caching policy it induces.  The
policy zoo also registers the dynamic extensions (LRU / LFU / CLOCK and
periodic VIP refresh, :func:`dynamic_cache_policies`) for non-stationary
workloads the static analysis cannot serve.
"""

from repro.vip.analytic import (
    TransitionTable,
    VIPResult,
    expected_remote_volume,
    partitionwise_vip,
    partitionwise_vip_dense,
    transition_probabilities,
    transition_table,
    uniform_minibatch_probability,
    vip_for_training_set,
    vip_probabilities,
    vip_probabilities_dense,
)
from repro.vip.incremental import (
    RefreshStats,
    VIPSnapshot,
    incremental_vip,
    snapshot_vip,
)
from repro.vip.empirical import (
    montecarlo_inclusion_frequency,
    simulate_access_counts,
)
from repro.vip.policies import (
    CacheContext,
    CachePolicy,
    DegreePolicy,
    HaloPolicy,
    NoCachePolicy,
    NumPathsPolicy,
    OraclePolicy,
    STATIC_CACHE_POLICIES,
    SimulationPolicy,
    VIPAnalyticPolicy,
    WeightedReversePageRankPolicy,
    build_caches,
    cache_budget,
    default_policies,
    dynamic_cache_policies,
    is_dynamic_policy,
)
from repro.vip.commvolume import (
    AccessTrace,
    PolicyVolume,
    evaluate_policies,
    geometric_mean_improvement,
    record_access_trace,
    remote_volume_for_caches,
)

__all__ = [
    "TransitionTable",
    "VIPResult",
    "expected_remote_volume",
    "partitionwise_vip",
    "partitionwise_vip_dense",
    "transition_probabilities",
    "transition_table",
    "uniform_minibatch_probability",
    "vip_for_training_set",
    "vip_probabilities",
    "vip_probabilities_dense",
    "RefreshStats",
    "VIPSnapshot",
    "incremental_vip",
    "snapshot_vip",
    "montecarlo_inclusion_frequency",
    "simulate_access_counts",
    "CacheContext",
    "CachePolicy",
    "DegreePolicy",
    "HaloPolicy",
    "NoCachePolicy",
    "NumPathsPolicy",
    "OraclePolicy",
    "STATIC_CACHE_POLICIES",
    "SimulationPolicy",
    "VIPAnalyticPolicy",
    "WeightedReversePageRankPolicy",
    "build_caches",
    "cache_budget",
    "default_policies",
    "dynamic_cache_policies",
    "is_dynamic_policy",
    "AccessTrace",
    "PolicyVolume",
    "evaluate_policies",
    "geometric_mean_improvement",
    "record_access_trace",
    "remote_volume_for_caches",
]
