"""Communication-volume evaluation of caching policies (Figure 2 harness).

Workflow mirroring the paper's simulation experiments:

1. Run the real node-wise sampler for ``epochs`` evaluation epochs on each
   partition's local training set, recording per-partition per-vertex access
   counts (one access = one minibatch whose expanded neighborhood contains
   the vertex — remote features are fetched in bulk once per minibatch).
2. For each policy and replication factor, select each machine's cache and
   charge one unit of communication per access to a remote, uncached vertex.

The same trace evaluates every policy, so "oracle" (ranking by the trace's
own counts) is a true lower bound and "none" the upper bound; all other
policies land in between.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.interface import Partition
from repro.sampling.neighbor import NeighborSampler
from repro.utils.rng import SeedLike, derive_seed
from repro.vip.policies import (
    CacheContext,
    CachePolicy,
    OraclePolicy,
    cache_budget,
)


@dataclass
class AccessTrace:
    """Per-partition access counts measured from sampled epochs.

    Attributes
    ----------
    counts:
        ``(K, N)`` — number of minibatches of machine ``k`` whose expanded
        neighborhood included vertex ``u`` (averaged counts stay integral
        because they are summed over all ``epochs``).
    epochs:
        Number of epochs the trace covers.
    steps:
        ``(K,)`` — total minibatch count per machine over the trace.
    """

    counts: np.ndarray
    epochs: int
    steps: np.ndarray

    @property
    def num_parts(self) -> int:
        return self.counts.shape[0]


def record_access_trace(
    graph: CSRGraph,
    partition: Partition,
    train_idx: np.ndarray,
    fanouts: Sequence[int],
    batch_size: int,
    epochs: int = 2,
    seed: SeedLike = 0,
) -> AccessTrace:
    """Sample ``epochs`` epochs per partition and count vertex accesses."""
    train_idx = np.asarray(train_idx, dtype=np.int64)
    owner = partition.assignment[train_idx]
    K = partition.num_parts
    counts = np.zeros((K, graph.num_vertices), dtype=np.int64)
    steps = np.zeros(K, dtype=np.int64)
    for k in range(K):
        local = train_idx[owner == k]
        if len(local) == 0:
            continue
        sampler = NeighborSampler(graph, fanouts, seed=derive_seed(seed, "trace", k))
        for epoch in range(epochs):
            for mfg in sampler.batches(
                local, batch_size, epoch=epoch, seed=derive_seed(seed, "order", k)
            ):
                counts[k, mfg.n_id] += 1
                steps[k] += 1
    return AccessTrace(counts=counts, epochs=epochs, steps=steps)


def remote_volume_for_caches(
    trace: AccessTrace,
    partition: Partition,
    caches: List[np.ndarray],
) -> float:
    """Average per-epoch remote fetch volume (in vertices) under ``caches``."""
    total = 0
    for k in range(trace.num_parts):
        remote = partition.assignment != k
        if len(caches[k]):
            remote = remote.copy()
            remote[caches[k]] = False
        total += int(trace.counts[k, remote].sum())
    return total / float(trace.epochs)


@dataclass
class PolicyVolume:
    """One (policy, alpha) evaluation result."""

    policy: str
    alpha: float
    volume: float  # avg per-epoch remote vertex fetches
    improvement: float  # volume(none) / volume


def evaluate_policies(
    graph: CSRGraph,
    partition: Partition,
    train_idx: np.ndarray,
    fanouts: Sequence[int],
    batch_size: int,
    policies: Dict[str, CachePolicy],
    alphas: Sequence[float],
    *,
    eval_epochs: int = 2,
    seed: SeedLike = 0,
    trace: Optional[AccessTrace] = None,
    include_oracle: bool = True,
) -> List[PolicyVolume]:
    """Figure-2 style sweep: volume for every (policy, alpha) pair.

    The "none" baseline and (optionally) the "oracle" lower bound are added
    automatically.  Pass a pre-recorded ``trace`` to amortize sampling across
    fanout settings.
    """
    if trace is None:
        trace = record_access_trace(
            graph, partition, train_idx, fanouts, batch_size,
            epochs=eval_epochs, seed=derive_seed(seed, "eval-trace"),
        )
    ctx = CacheContext(
        graph=graph,
        partition=partition,
        train_idx=train_idx,
        fanouts=fanouts,
        batch_size=batch_size,
        seed=seed,
    )
    K = partition.num_parts
    no_cache = [np.empty(0, dtype=np.int64)] * K
    base_volume = remote_volume_for_caches(trace, partition, no_cache)

    results = [PolicyVolume("none", 0.0, base_volume, 1.0)]

    all_policies = dict(policies)
    if include_oracle and "oracle" not in all_policies:
        all_policies["oracle"] = OraclePolicy(trace.counts)

    for name, policy in all_policies.items():
        # Scores do not depend on alpha: compute once per partition, then
        # re-select under each budget.
        scores = []
        for k in range(K):
            s = np.asarray(policy.scores(ctx, k), dtype=np.float64).copy()
            s[partition.assignment == k] = -np.inf
            scores.append(s)
        for alpha in alphas:
            budget = cache_budget(graph.num_vertices, K, alpha)
            caches = []
            for k in range(K):
                s = scores[k]
                candidates = np.flatnonzero(s > 0)
                if budget > 0 and len(candidates) > budget:
                    top = np.argpartition(-s[candidates], budget - 1)[:budget]
                    candidates = candidates[top]
                elif budget <= 0:
                    candidates = np.empty(0, dtype=np.int64)
                caches.append(np.sort(candidates))
            volume = remote_volume_for_caches(trace, partition, caches)
            results.append(PolicyVolume(
                policy=name,
                alpha=float(alpha),
                volume=volume,
                improvement=base_volume / max(volume, 1e-12),
            ))
    return results


def geometric_mean_improvement(
    results: List[PolicyVolume], policy: str
) -> float:
    """Geo-mean of (no-cache volume / policy volume) across a sweep —
    Figure 2(d)'s aggregate."""
    vals = [r.improvement for r in results if r.policy == policy]
    if not vals:
        raise ValueError(f"no results for policy {policy!r}")
    return float(np.exp(np.mean(np.log(vals))))
