"""Feature-caching policy zoo: static rankings (Figure 2) + dynamic caches.

Every *static* policy answers the same question: for machine ``k``, which
remote vertices' features should be replicated locally, given a budget of
``alpha * N / K`` cache slots?  Policies differ only in the per-vertex score
used for ranking:

==============  ==============================================================
``none``        No caching (the communication upper bound).
``degree``      Vertex degree, restricted to remote vertices reachable within
                L hops of the partition's training set (PaGraph / Lin et al.).
``halo``        The partition's 1-hop halo, ranked by degree inside the halo.
``wpr``         Weighted reverse PageRank, 5 iterations, damping 0.85
                (GNS / Min et al.) — fanout- and depth-agnostic.
``numpaths``    Number of paths of length ≤ L from the local training set.
``sim``         Empirical VIP: access frequencies counted over 2 simulated
                training epochs (GNNLab / Yang et al.).
``vip``         Analytic VIP per Proposition 1 — the paper's policy.
``oracle``      Actual access frequencies of the evaluation trace itself
                (retroactive; the communication lower bound).
==============  ==============================================================

All scores are computed *per partition* (footnote 1 of the paper: global
single-ranking variants of these baselines are strictly weaker).

The *dynamic* policies (see :mod:`repro.distributed.dynamic_cache`) keep the
same budget but change contents at runtime — the extension for workloads the
static analysis cannot serve (training-set drift, streaming inference):

===============  =============================================================
``lru``          Evict the least-recently-used cached row on admission.
``lfu``          Evict the least-frequently-used row (online empirical VIP).
``clock``        Second-chance CLOCK approximation of LRU.
``vip-refresh``  Contents fixed between refreshes; every ``refresh_interval``
                 batches, swap to the top analytic-VIP vertices for the
                 *current* training set (observed counts when no provider).
===============  =============================================================

:func:`dynamic_cache_policies` builds the spec for each name;
``RunConfig.cache_policy`` accepts either family, and
:class:`~repro.core.system.SalientPP` warm-starts dynamic caches from the
static analytic-VIP selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.distributed.dynamic_cache import (
    DYNAMIC_CACHE_POLICIES,
    DynamicCacheSpec,
    is_dynamic_policy,
)
from repro.graph.csr import CSRGraph
from repro.partition.interface import Partition
from repro.utils.registry import Registry
from repro.utils.rng import SeedLike, derive_seed
from repro.vip.analytic import vip_for_training_set
from repro.vip.empirical import simulate_access_counts

#: Static cache-policy registry (``RunConfig.cache_policy``): each entry is a
#: zero-argument factory for a :class:`CachePolicy`.  Shares the decorator
#: registration API with ``PARTITIONERS`` and ``DYNAMIC_CACHE_POLICIES``;
#: the oracle policy is deliberately absent (it needs the evaluation trace).
STATIC_CACHE_POLICIES = Registry("static cache policy")


@dataclass
class CacheContext:
    """Everything a caching policy may consult.

    The evaluation trace itself is *not* here — only the oracle policy sees
    it, via :class:`OraclePolicy`'s dedicated constructor.
    """

    graph: CSRGraph
    partition: Partition
    train_idx: np.ndarray
    fanouts: Sequence[int]
    batch_size: int
    seed: SeedLike = 0

    def local_train(self, part: int) -> np.ndarray:
        t = np.asarray(self.train_idx, dtype=np.int64)
        return t[self.partition.assignment[t] == part]

    @property
    def num_hops(self) -> int:
        return len(self.fanouts)


class CachePolicy:
    """Base class: subclasses implement :meth:`scores`."""

    name: str = "abstract"

    def scores(self, ctx: CacheContext, part: int) -> np.ndarray:
        """Per-vertex cache-priority scores for machine ``part`` (higher is
        better).  Entries for local vertices are ignored by selection."""
        raise NotImplementedError

    def select(self, ctx: CacheContext, part: int, budget: int) -> np.ndarray:
        """Ids of the ≤ ``budget`` highest-scoring remote vertices.

        Vertices with non-positive score are never cached (caching something
        provably never accessed wastes memory), which also gives policies a
        natural support set (e.g. the halo policy's halo).
        """
        if budget <= 0:
            return np.empty(0, dtype=np.int64)
        s = np.asarray(self.scores(ctx, part), dtype=np.float64).copy()
        s[ctx.partition.assignment == part] = -np.inf  # locals need no cache
        candidates = np.flatnonzero(s > 0)
        if len(candidates) == 0:
            return np.empty(0, dtype=np.int64)
        if len(candidates) > budget:
            top = np.argpartition(-s[candidates], budget - 1)[:budget]
            candidates = candidates[top]
        return np.sort(candidates)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


@STATIC_CACHE_POLICIES.register("none")
class NoCachePolicy(CachePolicy):
    """Upper bound: cache nothing."""

    name = "none"

    def scores(self, ctx: CacheContext, part: int) -> np.ndarray:
        return np.zeros(ctx.graph.num_vertices)


def _reachable_within(graph: CSRGraph, sources: np.ndarray, hops: int) -> np.ndarray:
    """Boolean mask of vertices reachable from ``sources`` in ≤ ``hops``."""
    mask = np.zeros(graph.num_vertices, dtype=bool)
    mask[np.asarray(sources, dtype=np.int64)] = True
    frontier = np.asarray(sources, dtype=np.int64)
    for _ in range(hops):
        if len(frontier) == 0:
            break
        lo, hi = graph.indptr[frontier], graph.indptr[frontier + 1]
        # Gather all neighbors of the frontier.
        counts = hi - lo
        rel = np.arange(int(counts.sum()), dtype=np.int64) - np.repeat(
            np.concatenate([[0], np.cumsum(counts)[:-1]]), counts
        )
        nbrs = graph.indices[np.repeat(lo, counts) + rel]
        fresh = np.unique(nbrs[~mask[nbrs]])
        mask[fresh] = True
        frontier = fresh
    return mask


@STATIC_CACHE_POLICIES.register("degree")
class DegreePolicy(CachePolicy):
    """Degree ranking over remote vertices reachable from the local training
    set within L hops (Lin et al., 2020)."""

    name = "degree"

    def scores(self, ctx: CacheContext, part: int) -> np.ndarray:
        reach = _reachable_within(ctx.graph, ctx.local_train(part), ctx.num_hops)
        deg = ctx.graph.degrees.astype(np.float64)
        return np.where(reach, deg + 1.0, 0.0)


@STATIC_CACHE_POLICIES.register("halo")
class HaloPolicy(CachePolicy):
    """The partition's 1-hop halo, ranked by degree within the halo."""

    name = "halo"

    def scores(self, ctx: CacheContext, part: int) -> np.ndarray:
        local = np.flatnonzero(ctx.partition.assignment == part)
        halo = _reachable_within(ctx.graph, local, 1)
        deg = ctx.graph.degrees.astype(np.float64)
        maxdeg = max(float(deg.max()), 1.0)
        # Halo membership dominates; degree only breaks ties inside the halo.
        return np.where(halo, 1.0 + deg / (maxdeg + 1.0), 0.0)


@STATIC_CACHE_POLICIES.register("wpr")
class WeightedReversePageRankPolicy(CachePolicy):
    """Weighted reverse PageRank from the local training set (Min et al.).

    5 power iterations with damping 0.85, pushing mass along reversed edges
    with 1/degree weights.  Deliberately agnostic to fanouts and layer count
    — the property the paper identifies as its weakness.
    """

    name = "wpr"
    iterations: int = 5
    damping: float = 0.85

    def scores(self, ctx: CacheContext, part: int) -> np.ndarray:
        n = ctx.graph.num_vertices
        local_train = ctx.local_train(part)
        s = np.zeros(n, dtype=np.float64)
        if len(local_train) == 0:
            return s
        s[local_train] = 1.0 / len(local_train)
        # Push matrix: (A D^{-1})[u, v] = 1/d(v) for u ∈ N(v) — each vertex
        # pushes its mass to neighbors, split by its own degree (reversed
        # propagation relative to standard PageRank's pull).
        adj = ctx.graph.to_scipy(dtype=np.float64)
        inv_deg = 1.0 / np.maximum(ctx.graph.degrees, 1)
        push = (adj @ sp.diags(inv_deg)).tocsr()
        r = s.copy()
        for _ in range(self.iterations):
            r = (1.0 - self.damping) * s + self.damping * (push @ r)
        return r


@STATIC_CACHE_POLICIES.register("numpaths")
class NumPathsPolicy(CachePolicy):
    """Number of paths of length ≤ L from the local training set: structural
    expansion without any model of sampling."""

    name = "numpaths"

    def scores(self, ctx: CacheContext, part: int) -> np.ndarray:
        n = ctx.graph.num_vertices
        local_train = ctx.local_train(part)
        c = np.zeros(n, dtype=np.float64)
        c[local_train] = 1.0
        adj = ctx.graph.to_scipy(dtype=np.float64)
        total = np.zeros(n, dtype=np.float64)
        for _ in range(ctx.num_hops):
            c = adj.T @ c  # paths extend along edges out of the current set
            total += c
        return total


@STATIC_CACHE_POLICIES.register("sim")
class SimulationPolicy(CachePolicy):
    """Empirical VIP: access counts over a few simulated epochs (Yang et al.).

    Uses its own RNG stream, distinct from any evaluation trace, so it pays
    the estimation variance the paper discusses (infrequently accessed
    vertices need many samples)."""

    name = "sim"

    def __init__(self, epochs: int = 2):
        self.epochs = epochs

    def scores(self, ctx: CacheContext, part: int) -> np.ndarray:
        return simulate_access_counts(
            ctx.graph,
            ctx.local_train(part),
            ctx.fanouts,
            ctx.batch_size,
            epochs=self.epochs,
            seed=derive_seed(ctx.seed, "sim-policy", part),
        ).astype(np.float64)


@STATIC_CACHE_POLICIES.register("vip")
class VIPAnalyticPolicy(CachePolicy):
    """The paper's policy: analytic VIP values per Proposition 1."""

    name = "vip"

    def scores(self, ctx: CacheContext, part: int) -> np.ndarray:
        res = vip_for_training_set(
            ctx.graph, ctx.local_train(part), ctx.fanouts, ctx.batch_size
        )
        return res.total


class OraclePolicy(CachePolicy):
    """Retroactive ranking by the evaluation trace's actual access counts —
    the communication lower bound of Figure 2.

    Construct with the ``(K, N)`` access-count matrix measured on the *same*
    trace that is later used for evaluation.
    """

    name = "oracle"

    def __init__(self, access_counts: np.ndarray):
        self.access_counts = np.asarray(access_counts, dtype=np.float64)

    def scores(self, ctx: CacheContext, part: int) -> np.ndarray:
        return self.access_counts[part]


def default_policies() -> Dict[str, Callable[[], CachePolicy]]:
    """Factories for the Figure 2 policy zoo (oracle excluded: it needs the
    evaluation trace) — a dict view over :data:`STATIC_CACHE_POLICIES`."""
    return dict(STATIC_CACHE_POLICIES.items())


def dynamic_cache_policies() -> Dict[str, Callable[..., DynamicCacheSpec]]:
    """Factories for the dynamic side of the zoo: each returns a
    :class:`DynamicCacheSpec` (pass ``capacity`` / ``refresh_interval`` /
    ``warm_scores`` through as keyword arguments) — a dict view over
    :data:`DYNAMIC_CACHE_POLICIES`."""
    return dict(DYNAMIC_CACHE_POLICIES.items())


def cache_budget(num_vertices: int, num_parts: int, alpha: float) -> int:
    """Cache slots per machine for replication factor ``alpha`` (§3.2:
    ``alpha * N / K`` cached feature vectors per machine)."""
    if alpha < 0:
        raise ValueError(f"replication factor must be non-negative, got {alpha}")
    return int(round(alpha * num_vertices / num_parts))


def build_caches(
    policy: CachePolicy,
    ctx: CacheContext,
    alpha: float,
) -> list:
    """Select each machine's cache set under replication factor ``alpha``."""
    budget = cache_budget(ctx.graph.num_vertices, ctx.partition.num_parts, alpha)
    return [
        policy.select(ctx, k, budget) for k in range(ctx.partition.num_parts)
    ]
