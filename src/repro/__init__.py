"""SALIENT++ reproduction.

A from-scratch Python implementation of *Communication-Efficient Graph Neural
Networks with Probabilistic Neighborhood Expansion Analysis and Caching*
(MLSys 2023): vertex-inclusion-probability (VIP) analysis, VIP-driven feature
caching, and a simulated distributed multi-GPU training system (SALIENT++)
with a deep minibatch-preparation pipeline — plus every substrate it needs
(CSR graphs, a METIS-like partitioner, a node-wise neighborhood sampler, a
numpy GNN stack, and a discrete-event performance model), and a dynamic
cache subsystem (LRU/LFU/CLOCK + periodic VIP refresh) for non-stationary
workloads beyond the paper.

Quickstart
----------
>>> from repro import load_dataset, RunConfig, SalientPP
>>> ds = load_dataset("tiny")
>>> cfg = RunConfig(num_machines=2, replication_factor=0.1)
>>> system = SalientPP.build(ds, cfg)
>>> report = system.train(epochs=1)
"""

from repro.graph import CSRGraph, GraphDataset, load_dataset

__version__ = "1.0.0"

__all__ = ["CSRGraph", "GraphDataset", "load_dataset", "__version__"]


def __getattr__(name):
    # Lazy re-exports of the heavier subsystems keep `import repro` cheap.
    if name in ("ArtifactCache", "Plan", "Planner", "RunConfig", "Salient",
                "SalientPP", "ServingConfig", "StreamingConfig",
                "SystemVariant"):
        import repro.core as _core

        return getattr(_core, name)
    if name == "InferenceService":
        from repro.serving import InferenceService

        return InferenceService
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
