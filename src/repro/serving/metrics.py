"""Serving metrics: the per-request latency ledger and run report.

Latency is *simulated*, not measured: every flush window the service
executes is emitted as :class:`~repro.pipeline.events.StageEvent`\\ s and
priced through :meth:`CostModel.event_duration` — the exact pricing path
the training engines' traces flow through (PR 3's unified event path) — so
serving latencies are deterministic, machine-independent, and directly
comparable to simulated training epoch times on the same cluster spec.

The service's latency model is *sequential per machine*: a machine runs one
flush window at a time (sampling → request exchange → peer serve slice →
feature payload → per-batch slice/H2D/gather/forward), and a window starts
at ``max(flush time, machine busy-until)``.  Queueing delay therefore
emerges from the event clock rather than being assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.obs.metrics import Histogram
from repro.pipeline.events import EventTrace

#: Bucket geometry for the serving latency histogram: 1 µs underflow edge,
#: ``2 ** (1/64)`` growth (≈ 1.09 % per bucket).  Percentiles read from the
#: histogram are within one bucket width of the exact order statistics —
#: tight enough that benchmark orderings (e.g. vip-refresh p99 < static
#: p99) survive the bucketing.
LATENCY_HIST_LO = 1e-6
LATENCY_HIST_GROWTH = 2.0 ** (1.0 / 64.0)


def latency_histogram() -> Histogram:
    """A fresh streaming histogram with the serving latency geometry."""
    return Histogram("serving.latency_s",
                     help="simulated request latency (seconds)",
                     lo=LATENCY_HIST_LO, growth=LATENCY_HIST_GROWTH)


@dataclass
class RequestRecord:
    """One request's simulated lifecycle (all times in seconds).

    ``formed`` is when the batcher flushed the request into a micro-batch
    (queueing wait ends — the quantity ``max_wait_ms`` bounds), ``started``
    when its window began executing, ``completed`` when its micro-batch's
    forward pass finished.

    ``status`` is the availability outcome: ``"ok"`` (full-fidelity
    answer), ``"degraded"`` (answered from resident state while a partition
    it needed was down — unavailable rows zero-filled, never silently
    substituted), or ``"shed"`` (refused per its SLO class; no prediction
    exists and ``completed`` is the refusal time).  ``retries`` counts
    requeues the request took before this outcome.
    """

    rid: int
    machine: int
    num_seeds: int
    arrival: float
    formed: float
    started: float
    completed: float
    slo: str = "standard"
    status: str = "ok"
    retries: int = 0

    @property
    def queue_wait(self) -> float:
        return self.formed - self.arrival

    @property
    def latency(self) -> float:
        return self.completed - self.arrival


@dataclass
class AvailabilityLedger:
    """What happened to every request while partitions were (un)healthy.

    The availability counterpart of the latency ledger: requests are
    counted exactly once as ``served_ok``, ``degraded``, or ``shed`` (so
    ``answered + shed == total``), and ``retries`` / ``unavailable_rows``
    measure the cost of outages that did not show up as refusals.  A
    fault-free run is all ``served_ok`` with every other counter zero.
    """

    served_ok: int = 0
    degraded: int = 0
    shed: int = 0
    retries: int = 0
    #: Demand-fetch rows that a down peer never delivered (zero-filled in
    #: the degraded responses; excluded from comm pricing and comm totals).
    unavailable_rows: int = 0

    @property
    def total(self) -> int:
        return self.served_ok + self.degraded + self.shed

    @property
    def answered(self) -> int:
        return self.served_ok + self.degraded

    def availability(self) -> float:
        """Fraction of requests answered (full-fidelity or degraded)."""
        return self.answered / max(self.total, 1)

    def ok_fraction(self) -> float:
        """Fraction of requests answered at full fidelity."""
        return self.served_ok / max(self.total, 1)


@dataclass
class GatherTotals:
    """Row-count totals over every gather the service executed."""

    total_rows: int = 0
    gpu_rows: int = 0
    cpu_rows: int = 0
    cached_rows: int = 0
    remote_rows: int = 0
    coalesced_rows: int = 0
    refresh_rows: int = 0
    cache_insertions: int = 0
    #: Rows a degraded gather zero-filled because their owner was down
    #: (moved out of ``remote_rows`` by the service — they never crossed
    #: the simulated wire).
    unavailable_rows: int = 0

    def add(self, stats) -> None:
        """Accumulate one :class:`GatherStats`."""
        self.total_rows += stats.total_rows
        self.gpu_rows += stats.gpu_rows
        self.cpu_rows += stats.cpu_rows
        self.cached_rows += stats.cached_rows
        self.remote_rows += stats.remote_rows
        self.coalesced_rows += stats.coalesced_rows
        self.refresh_rows += stats.refresh_fetch_rows
        self.cache_insertions += stats.cache_insertions

    def comm_rows(self) -> int:
        """All rows moved over the network (demand + cache updates)."""
        return self.remote_rows + self.refresh_rows

    def cache_hit_rate(self) -> float:
        """Fraction of non-local rows served without a demand fetch
        (cache hits and in-flight coalesced reads)."""
        hits = self.cached_rows + self.coalesced_rows
        return hits / max(hits + self.remote_rows, 1)


@dataclass
class ServingReport:
    """Everything one :meth:`InferenceService.run` produced.

    ``predictions[rid]`` holds one predicted class per requested seed, in
    the request's seed order.  ``trace`` is the validated per-machine
    :class:`EventTrace` (``machine_of_step`` set) the latencies were priced
    from.
    """

    records: List[RequestRecord]
    predictions: Dict[int, np.ndarray]
    trace: EventTrace
    gather: GatherTotals
    num_windows: int
    num_batches: int
    makespan: float
    window_durations: List[float] = field(default_factory=list)
    #: Streaming log-bucket latency histogram, filled by the service as
    #: requests complete.  Percentiles read from here, so they need no
    #: retained sample array; hand-built reports (tests) may omit it and
    #: one is derived from ``records`` on first use.
    latency_hist: Optional[Histogram] = None
    #: Availability outcomes (ok / degraded / shed / retries); a fault-free
    #: run is all ``served_ok``.  Hand-built reports get an empty ledger.
    availability: AvailabilityLedger = field(
        default_factory=AvailabilityLedger)

    # -- latency --------------------------------------------------------
    def latencies(self) -> np.ndarray:
        """Latencies of *answered* requests (shed requests have no
        completion to measure; they are counted in ``availability``)."""
        return np.array([r.latency for r in self.records
                         if r.status != "shed"])

    def _latencies_hist(self) -> Histogram:
        if self.latency_hist is None:
            hist = latency_histogram()
            for rec in self.records:
                if rec.status != "shed":
                    hist.observe(rec.latency)
            self.latency_hist = hist
        return self.latency_hist

    def latency_percentile(self, p: float) -> float:
        """Latency percentile in seconds (``p`` in [0, 100]).

        Streaming estimate: within one log-bucket width
        (:data:`LATENCY_HIST_GROWTH`) of the exact order statistic.
        """
        hist = self._latencies_hist()
        if hist.count == 0:
            return 0.0
        return hist.percentile(p)

    @property
    def p50(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p95(self) -> float:
        return self.latency_percentile(95.0)

    @property
    def p99(self) -> float:
        return self.latency_percentile(99.0)

    def mean_latency(self) -> float:
        lats = self.latencies()
        return float(lats.mean()) if len(lats) else 0.0

    def max_queue_wait(self) -> float:
        """Worst formation wait — the deadline batcher's SLO quantity
        (answered requests; a shed request never forms a batch)."""
        waits = [r.queue_wait for r in self.records if r.status != "shed"]
        return float(max(waits)) if waits else 0.0

    # -- rates ----------------------------------------------------------
    @property
    def num_requests(self) -> int:
        return len(self.records)

    def throughput_rps(self) -> float:
        """Completed requests per simulated second."""
        return self.num_requests / max(self.makespan, 1e-12)

    def mean_batch_requests(self) -> float:
        """Average requests per micro-batch (batching effectiveness)."""
        return self.num_requests / max(self.num_batches, 1)

    def comm_rows_per_request(self) -> float:
        return self.gather.comm_rows() / max(self.num_requests, 1)

    def summary(self) -> Dict[str, float]:
        """The headline scalars, ready for a results table."""
        return {
            "requests": float(self.num_requests),
            "windows": float(self.num_windows),
            "p50_ms": self.p50 * 1e3,
            "p95_ms": self.p95 * 1e3,
            "p99_ms": self.p99 * 1e3,
            "max_queue_wait_ms": self.max_queue_wait() * 1e3,
            "throughput_rps": self.throughput_rps(),
            "comm_rows": float(self.gather.comm_rows()),
            "cache_hit_rate": self.gather.cache_hit_rate(),
            "degraded": float(self.availability.degraded),
            "shed": float(self.availability.shed),
            "availability": self.availability.availability(),
        }
