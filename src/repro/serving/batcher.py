"""Micro-batching policies for the inference service.

A batcher owns one machine's pending-request queue discipline: *when* to
flush, and *how* to pack the drained requests into micro-batches (each
micro-batch becomes one sampled MFG; all micro-batches of a flush form one
comm window whose fetch plans are coalesced).  Policies are registered in
:data:`BATCHERS` (``repro.utils.registry.Registry``, the same pattern as
``ENGINES`` / ``PARTITIONERS``), selected by ``ServingConfig.batcher``:

``fixed-size``
    Flush only full batches of ``max_batch`` requests, in arrival order —
    the naive policy: lowest per-batch overhead, but a lone request can
    wait forever (the service force-drains at end of stream) and batch
    composition ignores the feature store entirely.

``deadline``
    Flush when the oldest queued request has waited ``max_wait_ms`` (or a
    full window of ``max_batch × max_in_flight`` requests is queued),
    draining in arrival order.  This bounds *queueing* wait by
    construction — the SLO knob — while accumulating enough micro-batches
    for the window's coalesced fetch to deduplicate across.

``cache-affinity``
    Deadline-triggered, but packs micro-batches by *feature residency*:
    requests are scored by the fraction of their seeds' one-hop
    neighborhood that is local or cached on this machine
    (:meth:`PartitionedFeatureStore.hit_mask`) and grouped
    affinity-sorted.  Under a popularity hot set this clusters hot-set
    requests — which share seeds and sampled frontier — into the same
    MFG, so their overlap collapses *before* planning (one frontier
    expansion instead of several independent ones) and the window's
    coalesced remote fetch shrinks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.serving.workload import Request
from repro.utils.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.config import ServingConfig
    from repro.distributed.feature_store import PartitionedFeatureStore
    from repro.graph.csr import CSRGraph

#: Micro-batcher registry (``ServingConfig.batcher``).
BATCHERS = Registry("micro-batcher")

#: Valid ``ServingConfig.router`` names (dispatch lives in the service).
ROUTERS = ("round-robin", "owner")

#: Deadline comparisons tolerate float accumulation in the simulated clock.
_EPS = 1e-12


def one_hop_union(graph: "CSRGraph", seeds: np.ndarray) -> np.ndarray:
    """``seeds`` plus all their neighbors — the cheap frontier proxy the
    affinity batcher scores (sampling the true L-hop frontier per queued
    request would cost more than the fetch it tries to save)."""
    seeds = np.asarray(seeds, dtype=np.int64)
    deg = graph.degrees[seeds]
    total = int(deg.sum())
    if total == 0:
        return np.unique(seeds)
    ends = np.cumsum(deg)
    rel = np.arange(total, dtype=np.int64) - np.repeat(ends - deg, deg)
    nbrs = graph.indices[np.repeat(graph.indptr[seeds], deg) + rel]
    return np.unique(np.concatenate([seeds, nbrs]))


class MicroBatcher:
    """Base batcher: holds the spec; subclasses decide flush and packing.

    One batcher instance serves one machine's queue.  :meth:`bind` wires
    the store handles policies that inspect residency need; the base
    implementation keeps them for subclasses and is a no-op otherwise.
    """

    name: str = "?"

    def __init__(self, spec: "ServingConfig"):
        self.spec = spec
        self.store: Optional["PartitionedFeatureStore"] = None
        self.machine: Optional[int] = None

    def bind(self, store: "PartitionedFeatureStore", machine: int) -> None:
        self.store = store
        self.machine = machine

    # -- interface ------------------------------------------------------
    def flush(self, queue: List[Request], now: float, *,
              force: bool = False) -> List[List[Request]]:
        """Pop and return the micro-batches to serve now (``[]`` = wait).

        Mutates ``queue`` (drained requests are removed).  At most
        ``max_in_flight`` micro-batches of at most ``max_batch`` requests
        each; ``force`` (end of stream) overrides the policy's trigger so
        nothing is stranded.
        """
        raise NotImplementedError

    def next_deadline(self, queue: List[Request]) -> Optional[float]:
        """Earliest simulated time a flush becomes due with no further
        arrivals (``None`` = only arrivals can trigger one)."""
        return None

    # -- shared helpers -------------------------------------------------
    def _take(self, queue: List[Request], count: int) -> List[Request]:
        taken = queue[:count]
        del queue[:count]
        return taken

    def _chunk(self, requests: List[Request]) -> List[List[Request]]:
        size = self.spec.max_batch
        return [requests[i:i + size] for i in range(0, len(requests), size)]


@BATCHERS.register("fixed-size")
class FixedSizeBatcher(MicroBatcher):
    """Flush full ``max_batch``-request batches only, in arrival order."""

    name = "fixed-size"

    def flush(self, queue, now, *, force=False):
        full = len(queue) // self.spec.max_batch
        batches = min(full, self.spec.max_in_flight)
        if batches == 0:
            if not (force and queue):
                return []
            return self._chunk(self._take(queue, self.spec.max_batch))
        return self._chunk(self._take(queue, batches * self.spec.max_batch))


@BATCHERS.register("deadline")
class DeadlineBatcher(MicroBatcher):
    """Flush at the oldest request's ``max_wait_ms`` deadline, or as soon
    as a *full window* (``max_batch × max_in_flight`` requests) is queued,
    draining in arrival order.

    Accumulating up to a whole window — rather than dispatching each full
    batch greedily like ``fixed-size`` — is what gives the window's
    coalesced fetch multiple micro-batches to deduplicate across; the
    deadline bounds what that accumulation may cost any single request.
    """

    name = "deadline"

    def _due(self, queue: List[Request], now: float) -> bool:
        return bool(queue) and (
            len(queue) >= self.spec.max_batch * self.spec.max_in_flight
            or now - queue[0].arrival >= self.spec.max_wait_s - _EPS
        )

    def flush(self, queue, now, *, force=False):
        if not (force and queue) and not self._due(queue, now):
            return []
        cap = self.spec.max_batch * self.spec.max_in_flight
        return self._pack(self._take(queue, min(len(queue), cap)))

    def _pack(self, requests: List[Request]) -> List[List[Request]]:
        return self._chunk(requests)

    def next_deadline(self, queue):
        if not queue:
            return None
        return queue[0].arrival + self.spec.max_wait_s


@BATCHERS.register("cache-affinity")
class CacheAffinityBatcher(DeadlineBatcher):
    """Deadline-triggered flush, residency-sorted packing.

    Scoring happens at flush time against the store's *current* contents
    (a dynamic cache yesterday's score would misjudge), so hot-set
    requests — whose one-hop frontiers miss the (stale or busy) cache the
    same way — land in the same micro-batch and share one frontier
    expansion instead of several independently sampled ones.
    """

    name = "cache-affinity"

    def affinity(self, request: Request) -> float:
        """Fraction of the request's one-hop frontier resident here."""
        if self.store is None or self.machine is None:
            raise RuntimeError("cache-affinity batcher used before bind()")
        frontier = one_hop_union(self.store.reordered.dataset.graph,
                                 request.seeds)
        return float(self.store.hit_mask(self.machine, frontier).mean())

    def _pack(self, requests):
        scores = np.array([self.affinity(r) for r in requests])
        # Stable sort: equal-affinity requests stay in arrival order.
        order = np.argsort(-scores, kind="stable")
        return self._chunk([requests[i] for i in order])


def make_batcher(name: str, spec: "ServingConfig", *,
                 store: "PartitionedFeatureStore", machine: int) -> MicroBatcher:
    """Build the named batcher bound to one machine's store view."""
    batcher = BATCHERS.get(name)(spec)
    batcher.bind(store, machine)
    return batcher
