"""Online inference serving: SLO-aware micro-batching over the partitioned
feature store (the ROADMAP's inference-workload half of the north star).

The subsystem layers four pieces over the existing store / cost-model /
event stack — nothing below it changed shape:

* :mod:`repro.serving.workload` — open-loop (Poisson / trace) and
  closed-loop load generators over drifting-popularity request streams;
* :mod:`repro.serving.batcher` — the :data:`BATCHERS` registry of
  micro-batching policies (``fixed-size``, ``deadline``,
  ``cache-affinity``);
* :mod:`repro.serving.service` — :class:`InferenceService`, the
  event-driven per-machine serving loop with coalesced feature fetches
  and a forward pass per micro-batch;
* :mod:`repro.serving.metrics` — the per-request latency ledger priced
  through :meth:`CostModel.event_duration` (p50/p95/p99, throughput,
  comm rows per request).
"""

from repro.serving.batcher import (
    BATCHERS,
    CacheAffinityBatcher,
    DeadlineBatcher,
    FixedSizeBatcher,
    MicroBatcher,
    ROUTERS,
    make_batcher,
    one_hop_union,
)
from repro.serving.metrics import (
    AvailabilityLedger,
    GatherTotals,
    RequestRecord,
    ServingReport,
)
from repro.serving.service import InferenceService, Outage, forward_flops
from repro.serving.workload import (
    ClosedLoopWorkload,
    Request,
    poisson_requests,
    trace_requests,
)

__all__ = [
    "BATCHERS",
    "ROUTERS",
    "CacheAffinityBatcher",
    "DeadlineBatcher",
    "FixedSizeBatcher",
    "MicroBatcher",
    "make_batcher",
    "one_hop_union",
    "AvailabilityLedger",
    "GatherTotals",
    "RequestRecord",
    "ServingReport",
    "InferenceService",
    "Outage",
    "forward_flops",
    "ClosedLoopWorkload",
    "Request",
    "poisson_requests",
    "trace_requests",
]
