"""The online inference service: SLO-aware micro-batching over the store.

:class:`InferenceService` is the serving-side counterpart of
:class:`~repro.distributed.executor.DistributedTrainer` — the consumer the
ROADMAP's "heavy traffic from millions of users" north star has been
missing.  Each of the K machines runs a request queue, a micro-batching
policy (:mod:`repro.serving.batcher`), a forward-only L-hop sampler, and
the shared :class:`~repro.distributed.feature_store.PartitionedFeatureStore`;
a single discrete-event clock drives all of them:

1. requests *arrive* (open-loop Poisson / trace, or closed-loop clients —
   see :mod:`repro.serving.workload`) carrying seeds in the caller's
   **original dataset numbering**; the service translates them once into
   the reordered (partition-contiguous) id space everything below the API
   boundary uses, and routes them to a machine's queue;
2. the machine's batcher *flushes* — on a full batch, at the ``max_wait_ms``
   deadline, or by cache affinity — producing up to ``max_in_flight``
   micro-batches that form one **flush window**;
3. each micro-batch is sampled (one MFG over the union of its requests'
   seeds — shared seeds expand once), the window's fetch plans are
   **coalesced** (:meth:`FetchPlan.coalesce`: remote ids needed by several
   in-flight micro-batches cross the wire once), features are gathered
   through the store (dynamic caches adapt to the observed traffic), and a
   forward pass yields one prediction per requested seed;
4. the window's :class:`~repro.pipeline.events.StageEvent`\\ s are priced
   by :meth:`CostModel.event_duration` — the same unified event path the
   training engines feed — giving every request a simulated completion
   time, and thus the p50/p95/p99 ledger in
   :class:`~repro.serving.metrics.ServingReport`.

The per-machine latency model is sequential (a machine serves one window
at a time; windows queue behind ``busy_until``), so queueing delay under
load emerges from the clock instead of being assumed.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.distributed.executor import _candidate_edges, sage_forward_flops
from repro.obs import OBS
from repro.distributed.feature_store import (
    FetchPlan,
    GatherArena,
    PartitionedFeatureStore,
)
from repro.pipeline.costmodel import CostModel
from repro.pipeline.events import EventTrace, Stage, emit_window_comm_events
from repro.sampling.mfg import MFG
from repro.sampling.neighbor import NeighborSampler
from repro.serving.batcher import MicroBatcher, make_batcher
from repro.serving.metrics import (
    AvailabilityLedger,
    GatherTotals,
    RequestRecord,
    ServingReport,
    latency_histogram,
)
from repro.serving.workload import ClosedLoopWorkload, Request
from repro.utils.rng import SeedLike, derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.config import RunConfig, ServingConfig, StreamingConfig
    from repro.core.system import SalientPP
    from repro.graph.mutable import EdgeBatch

#: Event kinds, in tie-break order at equal simulated time.  Health
#: transitions sort first (a machine down at an arrival's instant is down
#: for that arrival's routing); mutations next: a batch timestamped with an
#: arrival's instant is already part of the graph that arrival samples.
#: ``_REQUEUE`` re-enqueues an already-admitted (internal-numbering)
#: request — a retry backoff expiring, or a down machine's queue being
#: evacuated.
_HEALTH, _MUTATE, _ARRIVE, _TIMER, _COMPLETE, _REQUEUE = -2, -1, 0, 1, 2, 3

#: Default micro-batches of recently served seeds a machine remembers —
#: the request-distribution estimate its vip-refresh provider scores
#: against (shrunk to twice the refresh interval for refreshing caches).
_RECENT_WINDOW = 50


@dataclass(frozen=True)
class Outage:
    """One machine's unavailability interval on the simulated clock.

    While down, the machine serves nothing (its queue is evacuated to live
    machines, routing skips it) and its feature partition is unreachable:
    demand fetches that would hit it are handled per the requesting
    request's SLO class (retry / degrade / shed — see
    ``ServingConfig.slo_policies``).  Rows resident elsewhere — local to
    the serving machine or held in its cache — keep serving at full
    fidelity.  ``end=inf`` models a machine that never comes back.
    """

    machine: int
    start: float
    end: float = math.inf

    def validate(self, num_machines: int) -> "Outage":
        if not 0 <= self.machine < num_machines:
            raise ValueError(
                f"outage names machine {self.machine}, service has "
                f"{num_machines} machines"
            )
        if self.start < 0:
            raise ValueError(f"outage start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ValueError(
                f"outage end ({self.end}) must be after start ({self.start})"
            )
        return self


def forward_flops(mfg: MFG, in_dim: int, hidden_dim: int, out_dim: int) -> float:
    """Forward-pass GEMM FLOPs of a SAGE stack on this MFG — the inference
    third of :meth:`StepRecord.flops` (no backward), priced with the same
    shared :func:`sage_forward_flops` formula training uses."""
    block_sizes = [(b.num_src, b.num_dst, b.num_edges) for b in mfg.blocks]
    return sage_forward_flops(block_sizes, in_dim, hidden_dim, out_dim)


class InferenceService:
    """SLO-aware online inference over a partitioned feature store.

    Parameters
    ----------
    store / model / cost_model:
        The serving substrate — typically a trained (or freshly built)
        system's store, first model replica, and cost model (see
        :meth:`from_system`).
    serving:
        The :class:`~repro.core.config.ServingConfig` knobs (batcher,
        ``max_batch``, ``max_wait_ms``, ``max_in_flight``, router).
    fanouts:
        Forward-only sampling fanouts (typically the training fanouts, or
        ``serving.fanouts`` when inference samples differently).
    seed:
        Sampler randomness; one derived stream per machine, so runs are
        reproducible bit-for-bit.
    """

    def __init__(
        self,
        store: PartitionedFeatureStore,
        model,
        cost_model: CostModel,
        serving: "ServingConfig",
        *,
        fanouts: Sequence[int],
        seed: SeedLike = 0,
        streaming: Optional["StreamingConfig"] = None,
    ):
        from repro.core.config import StreamingConfig

        self.store = store
        self.model = model
        self.cost_model = cost_model
        self.spec = serving.validate()
        self.streaming = (streaming if streaming is not None
                          else StreamingConfig()).validate()
        self.fanouts = tuple(int(f) for f in fanouts)
        self.graph = store.reordered.dataset.graph
        self.num_machines = store.num_machines
        self.samplers = [
            NeighborSampler(self.graph, self.fanouts,
                            seed=derive_seed(seed, "serve-sampler", k))
            for k in range(self.num_machines)
        ]
        self.batchers: List[MicroBatcher] = [
            make_batcher(self.spec.batcher, self.spec, store=store, machine=k)
            for k in range(self.num_machines)
        ]
        dims = cost_model.dims
        self._dims = (dims.in_dim, dims.hidden_dim, dims.out_dim)
        self._rr_next = 0  # round-robin routing cursor
        # Machine-health view: _down[k] while machine k is inside >= 1
        # outage interval (_down_depth handles overlapping outages).
        self._down: List[bool] = [False] * self.num_machines
        self._down_depth: List[int] = [0] * self.num_machines
        self._slo_policy = dict(self.spec.slo_policies)
        self._retries: Dict[int, int] = {}
        self.availability = AvailabilityLedger()
        # Reusable gather outputs, keyed by (machine, micro-batch slot): a
        # window's features are consumed (forward pass, predictions copied)
        # before the machine serves another window.
        self._gather_arena = GatherArena()
        # Sliding window of recently served seed sets per machine — the
        # observed request distribution the vip-refresh score provider
        # re-runs Proposition 1 against (see _request_vip_scores).  The
        # window tracks the refresh cadence: scoring over much more history
        # than two refresh periods would blur a drifting hot set.
        window = _RECENT_WINDOW
        if store.has_dynamic_caches:
            spec0 = next(s.cache.spec for s in store.stores
                         if s.has_dynamic_cache)
            if spec0.refresh_interval > 0:
                window = max(4, 2 * spec0.refresh_interval)
            store.set_refresh_score_provider(self._request_vip_scores)
        self._recent_seeds: List[deque] = [
            deque(maxlen=window) for _ in range(self.num_machines)
        ]
        # Streaming-graph state: lazily filled on the first mutation batch.
        # Each machine keeps its own VIPSnapshot so refresh scores are
        # produced by the dirty-frontier incremental recursion instead of a
        # full Proposition-1 recompute per refresh; with
        # streaming.refresh_on_mutation=False the pre-churn base graph is
        # frozen instead and scores stay deliberately stale (the baseline
        # the streaming benchmark measures against).
        self._vip_snapshots: List[Optional[object]] = (
            [None] * self.num_machines)
        self._stale_vip_graph = None
        self.mutations_applied = 0

    # ------------------------------------------------------------------
    def _request_vip_scores(self, machine: int) -> np.ndarray:
        """Proposition-1 VIP over the machine's *observed request traffic* —
        the paper's §3 machinery pointed at inference.

        A training-time refresh re-scores against the machine's training
        set; a serving refresh must instead rank by the probability a
        vertex lands in the sampled frontier of an *incoming micro-batch*.
        The initial distribution ``p[0](u)`` is therefore estimated
        empirically — the fraction of the machine's recent micro-batches
        whose seed set contained ``u`` — and fed through the same analytic
        recursion (:func:`vip_probabilities`), so a hot seed appearing in
        every batch (p0 ≈ 1) outranks a cold one-off (p0 = 1/window) and
        the whole sampled closure of the hot set is scored, hops the cache
        never even saw yet included.  Before any traffic is observed the
        scores are zero and the cost-aware swap planner keeps the
        warm-start contents.

        On a mutating graph (``run`` with ``mutations``) the refresh runs
        the dirty-frontier incremental recursion against this machine's
        :class:`~repro.vip.incremental.VIPSnapshot` — O(churn + seed
        drift) instead of a full recompute — unless
        ``streaming.refresh_on_mutation`` is off, in which case scores
        are computed on the frozen pre-churn graph (deliberately stale).
        """
        from repro.vip.analytic import vip_probabilities

        recent = self._recent_seeds[machine]
        if not recent:
            return np.zeros(self.graph.num_vertices)
        counts = np.zeros(self.graph.num_vertices, dtype=np.float64)
        for seeds in recent:  # seeds are unique within a micro-batch
            counts[seeds] += 1.0
        p0 = counts / len(recent)
        if self._stale_vip_graph is not None:
            return vip_probabilities(self._stale_vip_graph, p0,
                                     self.fanouts).access
        from repro.graph.mutable import MutableGraph

        if isinstance(self.graph, MutableGraph):
            from repro.vip.incremental import incremental_vip, snapshot_vip

            snap = self._vip_snapshots[machine]
            if snap is None or snap.fanouts != self.fanouts:
                snap = snapshot_vip(self.graph, p0, self.fanouts)
            else:
                snap = incremental_vip(
                    self.graph, snap, p0,
                    churn_cutoff=self.streaming.churn_cutoff,
                )
            self._vip_snapshots[machine] = snap
            return snap.access
        return vip_probabilities(self.graph, p0, self.fanouts).access

    @classmethod
    def from_system(cls, system: "SalientPP") -> "InferenceService":
        """Serve from an existing system's store, model, and cost model.

        With a dynamic ``vip-refresh`` cache, constructing the service
        rewires the store's refresh score provider from training-set VIP
        (which says nothing about a drifting request hot set) to
        request-traffic VIP (:meth:`_request_vip_scores`).
        """
        config = system.config
        spec = config.serving
        return cls(
            system.store,
            system.trainer.models[0],
            system.cost_model,
            spec,
            fanouts=spec.fanouts if spec.fanouts is not None else config.fanouts,
            seed=derive_seed(config.seed, "serving"),
            streaming=config.streaming,
        )

    @classmethod
    def build(
        cls,
        dataset,
        config: "RunConfig",
        *,
        planner=None,
        partition=None,
        vip_matrix=None,
    ) -> "InferenceService":
        """Build the serving substrate through the preprocessing planner.

        Identical artifact reuse to :meth:`SalientPP.build`: a shared
        planner serves partition / VIP / reorder / cache-selection from its
        cache, and since no preprocessing stage fingerprints the
        ``serving`` config slice, serving sweeps (batchers, SLOs, routers)
        recompute nothing.
        """
        from repro.core.planner import Planner

        if planner is None:
            planner = Planner()
        return planner.build_service(dataset, config, partition=partition,
                                     vip_matrix=vip_matrix)

    # ------------------------------------------------------------------
    def _admit(self, request: Request) -> Request:
        """Translate an arriving request into the internal id space.

        Callers name vertices in the *original* dataset numbering (the only
        one they know); the store, sampler, and batchers all speak the
        reordered numbering.  The translated copy is what flows through the
        service; the caller's object is kept untouched (and is what
        closed-loop ``on_complete`` receives back), with predictions
        reported in the caller's seed order.
        """
        if request.rid in self._originals:
            raise ValueError(f"duplicate request id {request.rid}")
        seeds = np.asarray(request.seeds, dtype=np.int64)
        n = self.graph.num_vertices
        if len(seeds) and (seeds.min() < 0 or seeds.max() >= n):
            raise ValueError(
                f"request {request.rid} names vertices outside [0, {n})"
            )
        self._originals[request.rid] = request
        return Request(
            rid=request.rid,
            seeds=self.store.reordered.new_of_old[seeds],
            arrival=request.arrival,
            client=request.client,
            slo=request.slo,
        )

    def _route(self, request: Request) -> int:
        """Pick the serving machine; down machines are skipped while at
        least one machine is up (with every machine down, the healthy
        choice stands — the request waits in that queue for an up
        transition or the end-of-run shed)."""
        if self.spec.router == "owner":
            owners = self.store.reordered.owner_of(request.seeds)
            counts = np.bincount(owners, minlength=self.num_machines)
            if any(self._down):
                up = [k for k in range(self.num_machines) if not self._down[k]]
                if up:
                    return max(up, key=lambda k: (counts[k], -k))
            return int(counts.argmax())
        for _ in range(self.num_machines):
            machine = self._rr_next
            self._rr_next = (self._rr_next + 1) % self.num_machines
            if not self._down[machine]:
                return machine
        return machine  # every machine down

    def _push(self, time: float, kind: int, payload) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, kind, self._seq, payload))

    # ------------------------------------------------------------------
    def run(
        self,
        workload: Union[Sequence[Request], ClosedLoopWorkload],
        *,
        mutations: Optional[Sequence[Tuple[float, "EdgeBatch"]]] = None,
        outages: Optional[Sequence[Union[Outage, Tuple]]] = None,
    ) -> ServingReport:
        """Serve ``workload`` to completion; returns the priced report.

        ``workload`` is either a request list (open loop — arrivals are
        fixed) or a :class:`ClosedLoopWorkload` (each completion issues the
        client's next request).  Every request is answered: end of stream
        force-drains the queues, so ``fixed-size`` cannot strand a partial
        batch.

        ``mutations`` makes the graph itself part of the workload: each
        ``(time, EdgeBatch)`` lands on the simulated clock between request
        windows (endpoints in the caller's original numbering, like
        request seeds).  The first batch wraps the graph in a delta-CSR
        overlay (:class:`~repro.graph.mutable.MutableGraph`); samplers
        read through it immediately, and vip-refresh scores follow per
        ``streaming.refresh_on_mutation`` (incremental refresh vs the
        frozen stale baseline).  Refresh fetch traffic stays priced
        through the existing ``CACHE_REFRESH`` stage event.

        ``outages`` adds partition loss to the scenario: each
        :class:`Outage` (or ``(machine, start, end)`` tuple) takes one
        machine down for an interval of the simulated clock.  Down
        machines serve nothing (their queues are evacuated, routing skips
        them) and their feature partitions are unreachable; a request
        whose gather would touch a down partition is retried with
        backoff, served degraded from resident state (unavailable rows
        zero-filled), or shed — per its SLO class
        (``ServingConfig.slo_policies``) — and every outcome is counted
        in the report's :class:`~repro.serving.metrics.
        AvailabilityLedger`.  Requests whose gathers avoid every down
        partition are served at full fidelity throughout.
        """
        closed = hasattr(workload, "on_complete")
        initial = workload.initial() if closed else list(workload)
        spans = [o if isinstance(o, Outage) else Outage(*o)
                 for o in (outages or ())]
        for o in spans:
            o.validate(self.num_machines)

        self._heap: list = []
        self._seq = 0
        self._queues: List[List[Request]] = [[] for _ in range(self.num_machines)]
        self._timer_at: List[Optional[float]] = [None] * self.num_machines
        self._busy = [0.0] * self.num_machines
        self._trace = EventTrace(
            engine="serving", num_machines=self.num_machines, num_steps=0,
            windows=[], machine_of_step=[],
        )
        self._totals = GatherTotals()
        self._latency_hist = latency_histogram()
        self._records: List[RequestRecord] = []
        self._predictions = {}
        self._originals = {}
        self._window_durations: List[float] = []
        self._down = [False] * self.num_machines
        self._down_depth = [0] * self.num_machines
        self._retries: Dict[int, int] = {}
        self.availability = AvailabilityLedger()

        for req in initial:
            self._push(req.arrival, _ARRIVE, req)
        for when, batch in (mutations or ()):
            self._push(float(when), _MUTATE, batch)
        for o in spans:
            self._push(o.start, _HEALTH, (o.machine, True))
            if math.isfinite(o.end):
                self._push(o.end, _HEALTH, (o.machine, False))

        now = 0.0
        while self._heap:
            time, kind, _, payload = heapq.heappop(self._heap)
            now = max(now, time)
            if kind == _HEALTH:
                self._on_health(payload, now)
            elif kind == _MUTATE:
                self._apply_mutation(payload)
            elif kind == _ARRIVE:
                internal = self._admit(payload)
                machine = self._route(internal)
                self._queues[machine].append(internal)
                self._try_flush(machine, now)
            elif kind == _REQUEUE:
                machine = self._route(payload)
                self._queues[machine].append(payload)
                self._try_flush(machine, now)
            elif kind == _TIMER:
                self._timer_at[payload] = None
                self._try_flush(payload, now)
            else:  # _COMPLETE
                machine, group = payload
                if closed:
                    for req in group:
                        nxt = workload.on_complete(
                            self._originals[req.rid], now
                        )
                        if nxt is not None:
                            self._push(nxt.arrival, _ARRIVE, nxt)
            if not self._heap:
                # No arrival can ever trigger another flush: drain what the
                # policies are still holding (fixed-size partial batches).
                for machine in range(self.num_machines):
                    if self._down[machine] and self._queues[machine]:
                        # Only reachable with every machine down (routing
                        # never queues on a down machine otherwise), and
                        # an empty heap means no up-transition is ever
                        # coming: refuse rather than wedge.
                        self._shed(machine, self._queues[machine], now)
                        self._queues[machine] = []
                        continue
                    while self._queues[machine]:
                        groups = self.batchers[machine].flush(
                            self._queues[machine], now, force=True
                        )
                        if not groups:  # defensive: a policy must drain
                            raise RuntimeError(
                                f"batcher {self.spec.batcher!r} refused a "
                                f"forced flush with requests queued"
                            )
                        self._serve_window(machine, groups, now)

        records = sorted(self._records, key=lambda r: r.rid)
        makespan = 0.0
        if records:
            makespan = (max(r.completed for r in records)
                        - min(r.arrival for r in records))
        return ServingReport(
            records=records,
            predictions=self._predictions,
            trace=self._trace.validate(),
            gather=self._totals,
            num_windows=len(self._window_durations),
            num_batches=self._trace.num_steps,
            makespan=makespan,
            window_durations=self._window_durations,
            latency_hist=self._latency_hist,
            availability=self.availability,
        )

    # ------------------------------------------------------------------
    def _apply_mutation(self, batch: "EdgeBatch") -> None:
        """Land one edge-churn batch on the serving graph.

        Lazily wraps the (reordered) base CSR in a
        :class:`~repro.graph.mutable.MutableGraph` and re-points every
        machine's sampler at it — from here on all sampling reads through
        the overlay.  Endpoints arrive in the original dataset numbering
        (the only one callers know) and are translated exactly like
        request seeds.  Vertex-set changes are out of scope for serving:
        the feature store has no rows for vertices that did not exist at
        build time, so ``EdgeBatch`` (edges only) is the full vocabulary.
        """
        from repro.graph.mutable import EdgeBatch, MutableGraph

        if not isinstance(self.graph, MutableGraph):
            base = self.graph
            if not self.streaming.refresh_on_mutation:
                self._stale_vip_graph = base
            self.graph = MutableGraph(
                base, compact_cutoff=self.streaming.compact_cutoff)
            for sampler in self.samplers:
                sampler.graph = self.graph
        n = self.graph.num_vertices
        new_of_old = self.store.reordered.new_of_old
        for arr in (batch.add_src, batch.add_dst,
                    batch.del_src, batch.del_dst):
            if len(arr) and (arr.min() < 0 or arr.max() >= n):
                raise ValueError(
                    f"mutation batch names vertices outside [0, {n})"
                )
        self.graph.apply(EdgeBatch(
            add_src=new_of_old[batch.add_src],
            add_dst=new_of_old[batch.add_dst],
            del_src=new_of_old[batch.del_src],
            del_dst=new_of_old[batch.del_dst],
        ))
        self.mutations_applied += 1

    def _on_health(self, payload: Tuple[int, bool], now: float) -> None:
        """Apply one machine up/down transition (depth-counted, so
        overlapping outages compose)."""
        machine, going_down = payload
        if going_down:
            self._down_depth[machine] += 1
            if self._down_depth[machine] == 1:
                self._down[machine] = True
                if OBS.enabled:
                    OBS.metrics.counter("serve.outages").inc()
                # Evacuate: everything queued on the dying machine is
                # re-routed to live machines (original arrivals kept, so
                # the outage's queueing cost stays visible in latency).
                pending, self._queues[machine] = self._queues[machine], []
                for req in pending:
                    self._push(now, _REQUEUE, req)
        else:
            self._down_depth[machine] -= 1
            if self._down_depth[machine] == 0:
                self._down[machine] = False
                self._try_flush(machine, now)

    def _slo_action(self, slo: str) -> str:
        return self._slo_policy.get(slo, "degrade")

    def _unavailable_mask(self, plan: FetchPlan) -> np.ndarray:
        """Which of ``plan.remote_ids`` are owned by a down machine.

        Only *demand* fetches can be unavailable: local rows and cached
        (resident) rows keep serving through an owner's outage.
        """
        owners = self.store.reordered.owner_of(plan.remote_ids)
        down = np.asarray(self._down, dtype=bool)
        return down[owners]

    def _shed(self, machine: int, reqs: List[Request], now: float) -> None:
        """Refuse ``reqs`` per their SLO class: recorded (status
        ``"shed"``), no prediction, completion event at the refusal time
        so closed-loop clients continue."""
        for req in reqs:
            self.availability.shed += 1
            self._records.append(RequestRecord(
                rid=req.rid, machine=machine, num_seeds=req.num_seeds,
                arrival=req.arrival, formed=now, started=now, completed=now,
                slo=req.slo, status="shed",
                retries=self._retries.get(req.rid, 0),
            ))
            if OBS.enabled:
                OBS.metrics.counter("serve.shed_requests").inc()
        self._push(now, _COMPLETE, (machine, list(reqs)))

    def _apply_slo_actions(self, machine: int, group: List[Request],
                           now: float) -> List[Request]:
        """Split one down-partition-touching micro-batch by SLO class.

        Returns the requests to serve degraded now; ``retry``-class
        requests with budget left are requeued with exponential backoff
        (they re-route on re-delivery, after the partition may have
        returned), exhausted retriers degrade, ``shed``-class requests are
        refused on the spot.
        """
        kept: List[Request] = []
        for req in group:
            action = self._slo_action(req.slo)
            if action == "retry":
                attempt = self._retries.get(req.rid, 0)
                if attempt < self.spec.retry_limit:
                    self._retries[req.rid] = attempt + 1
                    self.availability.retries += 1
                    if OBS.enabled:
                        OBS.metrics.counter("serve.retries").inc()
                    delay = self.spec.retry_backoff_ms / 1e3 * (2.0 ** attempt)
                    self._push(now + delay, _REQUEUE, req)
                    continue
                kept.append(req)  # retry budget spent: serve degraded
            elif action == "shed":
                self._shed(machine, [req], now)
            else:
                kept.append(req)
        return kept

    def _try_flush(self, machine: int, now: float) -> None:
        """Flush as long as the batcher is due, then arm its deadline."""
        if self._down[machine]:
            return  # a down machine serves nothing until its up event
        while True:
            groups = self.batchers[machine].flush(self._queues[machine], now)
            if not groups:
                break
            self._serve_window(machine, groups, now)
        deadline = self.batchers[machine].next_deadline(self._queues[machine])
        if deadline is not None:
            deadline = max(deadline, now)
            armed = self._timer_at[machine]
            if armed is None or deadline < armed - 1e-15:
                self._push(deadline, _TIMER, machine)
                self._timer_at[machine] = deadline

    def _serve_window(self, machine: int, groups: List[List[Request]],
                      now: float) -> None:
        """Execute one flush window: sample, coalesce, gather, forward.

        Emits the window's stage events (``TRAIN`` carries forward-only
        FLOPs; the comm events charge the peers' serve slice into this
        window's critical path, since the requester waits for it) and
        schedules per-micro-batch completions on the simulated clock.
        """
        trace = self._trace
        step0 = trace.num_steps
        sampler = self.samplers[machine]
        degraded_mode = any(self._down)
        flags: Dict[int, str] = {}
        kept_groups: List[List[Request]] = []
        mfgs = []
        plans: List[FetchPlan] = []
        masks: List[Optional[np.ndarray]] = []
        for group in groups:
            seeds = np.unique(np.concatenate([r.seeds for r in group]))
            mfg = sampler.sample(seeds)
            self._recent_seeds[machine].append(seeds)
            plan = self.store.plan_gather(machine, mfg.n_id)
            mask = None
            if degraded_mode:
                mask = self._unavailable_mask(plan)
                if mask.any():
                    # This micro-batch needs a down partition: split it by
                    # SLO class, then resample over what actually serves.
                    kept = self._apply_slo_actions(machine, group, now)
                    if not kept:
                        self._recent_seeds[machine].pop()
                        continue
                    if len(kept) != len(group):
                        seeds = np.unique(
                            np.concatenate([r.seeds for r in kept]))
                        mfg = sampler.sample(seeds)
                        self._recent_seeds[machine][-1] = seeds
                        plan = self.store.plan_gather(machine, mfg.n_id)
                        mask = self._unavailable_mask(plan)
                    group = kept
                    if mask.any():
                        for req in group:
                            flags[req.rid] = "degraded"
            kept_groups.append(group)
            mfgs.append(mfg)
            plans.append(plan)
            masks.append(mask)
        if not kept_groups:
            return
        groups = kept_groups
        dtype = self.store.stores[machine].local_features.dtype
        outs = [self._gather_arena.out((machine, i), len(p.ids),
                                       self.store.feature_dim, dtype)
                for i, p in enumerate(plans)]
        if len(plans) == 1:
            results = [self.store.execute(plans[0], out=outs[0])]
            fresh_masks: List[Optional[np.ndarray]] = [None]  # all fresh
        else:
            cplan = FetchPlan.coalesce(plans)
            results = self.store.execute_coalesced(cplan, outs=outs)
            fresh_masks = list(cplan.first_request)
        # Degraded gathers: rows owned by a down machine never arrived —
        # zero them (the in-process store "fetched" them, but the modeled
        # peer is gone) and keep their counts out of the comm pricing.  An
        # unavailable row comes out of the bucket that claimed it: remote
        # if this sub-plan was its first request in the window, coalesced
        # otherwise.
        unavail_fresh = [0] * len(plans)
        unavail_coalesced = [0] * len(plans)
        for i, (plan, mask, fresh) in enumerate(
                zip(plans, masks, fresh_masks)):
            if mask is not None and mask.any():
                results[i][0][plan.remote_pos[mask]] = 0
                n_fresh = (int(mask.sum()) if fresh is None
                           else int((mask & fresh).sum()))
                unavail_fresh[i] = n_fresh
                unavail_coalesced[i] = int(mask.sum()) - n_fresh

        def priced(stage: Stage, step: int, **volumes) -> float:
            trace.add(stage, machine, step, **volumes)
            return self.cost_model.event_duration(trace.events[-1])

        sample_time = 0.0
        compute_times: List[float] = []
        demand_rows = 0
        refresh_rows = 0
        mfg_edges = 0
        for i, (mfg, (_feats, stats)) in enumerate(zip(mfgs, results)):
            step = step0 + i
            self._totals.add(stats)
            n_unavail = unavail_fresh[i] + unavail_coalesced[i]
            if n_unavail:
                self._totals.remote_rows -= unavail_fresh[i]
                self._totals.coalesced_rows -= unavail_coalesced[i]
                self._totals.unavailable_rows += n_unavail
                self.availability.unavailable_rows += n_unavail
            host_rows = stats.cpu_rows + stats.cached_rows + stats.coalesced_rows
            sample_time += priced(
                Stage.SAMPLE, step,
                candidate_edges=_candidate_edges(self.graph.degrees, mfg),
            )
            compute = priced(Stage.LOCAL_SLICE, step,
                             rows=host_rows + stats.cache_insertions)
            compute += priced(Stage.H2D, step,
                              rows=host_rows + stats.remote_rows)
            compute += priced(Stage.GPU_GATHER, step,
                              gpu_rows=stats.gpu_rows,
                              total_rows=stats.total_rows)
            compute += priced(Stage.TRAIN, step,
                              flops=forward_flops(mfg, *self._dims))
            compute_times.append(compute)
            demand_rows += stats.remote_rows - unavail_fresh[i]
            refresh_rows += stats.refresh_fetch_rows
            mfg_edges += mfg.num_edges

        comm_events = emit_window_comm_events(trace, step0, machine,
                                              demand_rows, demand_rows,
                                              mfg_edges=mfg_edges)
        comm_time = sum(self.cost_model.event_duration(ev)
                        for ev in comm_events)
        trace.windows.append((step0, step0 + len(groups)))
        trace.machine_of_step.extend([machine] * len(groups))
        trace.num_steps += len(groups)

        start = max(now, self._busy[machine])
        clock = start + sample_time + comm_time
        window_parent = 0
        if OBS.enabled:
            lane = f"machine-{machine}"
            win = OBS.tracer.add_sim_span(
                "serve.window", start, start, lane=lane,
                batches=len(groups), demand_rows=demand_rows,
            )
            window_parent = win.span_id
            OBS.tracer.add_sim_span("serve.sample", start,
                                    start + sample_time, lane=lane,
                                    parent_id=window_parent)
            OBS.tracer.add_sim_span("serve.fetch", start + sample_time,
                                    clock, lane=lane,
                                    parent_id=window_parent,
                                    remote_rows=demand_rows)
        for i, group in enumerate(groups):
            forward_start = clock
            clock += compute_times[i]
            if OBS.enabled:
                OBS.tracer.add_sim_span("serve.forward", forward_start,
                                        clock, lane=f"machine-{machine}",
                                        parent_id=window_parent,
                                        requests=len(group))
            self._finish_batch(machine, mfgs[i], results[i][0], group,
                               formed=now, started=start, completed=clock,
                               window_span=window_parent, flags=flags)
        self._window_durations.append(clock - start)
        # Cache-refresh fetches run after the responses are out: they hold
        # the machine (delaying the next window) but not these requests.
        refresh_time = priced(Stage.CACHE_REFRESH, step0, rows=refresh_rows)
        self._busy[machine] = clock + refresh_time
        if window_parent:
            win.sim_end = self._busy[machine]
            if refresh_rows:
                OBS.tracer.add_sim_span(
                    "serve.cache_refresh", clock, self._busy[machine],
                    lane=f"machine-{machine}", parent_id=window_parent,
                    rows=refresh_rows,
                )
            m = OBS.metrics
            m.counter("serving.windows").inc()
            m.counter("serving.batches").inc(len(groups))
            m.counter("serving.demand_rows").inc(demand_rows)
            m.counter("serving.refresh_rows").inc(refresh_rows)

    def _finish_batch(self, machine: int, mfg: MFG, feats: np.ndarray,
                      group: List[Request], *, formed: float, started: float,
                      completed: float, window_span: int = 0,
                      flags: Optional[Dict[int, str]] = None) -> None:
        """Forward pass → per-seed predictions, records, completion event."""
        self.model.eval()
        logits = self.model(feats, mfg)
        preds = logits.data.argmax(axis=1)
        for req in group:
            status = flags.get(req.rid, "ok") if flags else "ok"
            if status == "degraded":
                self.availability.degraded += 1
                if OBS.enabled:
                    OBS.metrics.counter("serve.degraded_requests").inc()
            else:
                self.availability.served_ok += 1
            # mfg.seeds is the sorted unique union of the group's seeds.
            pos = np.searchsorted(mfg.seeds, req.seeds)
            self._predictions[req.rid] = preds[pos].copy()
            self._records.append(RequestRecord(
                rid=req.rid, machine=machine, num_seeds=req.num_seeds,
                arrival=req.arrival, formed=formed, started=started,
                completed=completed, slo=req.slo, status=status,
                retries=self._retries.get(req.rid, 0),
            ))
            self._latency_hist.observe(completed - req.arrival)
            if OBS.enabled:
                # One admission→reply span per request: queueing is
                # visible as the gap between arrival and the window span.
                OBS.tracer.add_sim_span(
                    "serve.request", req.arrival, completed,
                    lane=f"machine-{machine}", parent_id=window_span,
                    rid=req.rid, num_seeds=req.num_seeds,
                    formed=formed, started=started,
                )
                OBS.metrics.counter("serving.requests").inc()
        self._push(completed, _COMPLETE, (machine, group))
