"""Load generators for the online inference service.

Two classic load shapes drive serving evaluations:

* **Open loop** — requests arrive on their own schedule (Poisson process or
  an explicit arrival trace) regardless of how fast the service drains
  them.  This is the shape that exposes queueing: when the service falls
  behind, latency grows without bound.  :func:`poisson_requests` /
  :func:`trace_requests` produce fully materialized request lists.

* **Closed loop** — a fixed population of clients, each with at most one
  request outstanding: a client issues its next request only after the
  previous one completes (plus an optional think time).  Offered load
  adapts to service speed, so closed-loop runs measure achievable
  throughput rather than queueing collapse.  :class:`ClosedLoopWorkload`
  is driven by the service via :meth:`~ClosedLoopWorkload.on_complete`.

Request *contents* come from
:func:`repro.graph.generators.streaming_request_stream` — batches of
distinct seed vertices drawn from a drifting popularity hot set, the
traffic shape a production GNN inference tier actually sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.graph.generators import streaming_request_stream
from repro.utils.rng import SeedLike, as_generator, derive_seed


@dataclass
class Request:
    """One inference request: predict labels for ``seeds``.

    ``seeds`` are vertex ids in the caller's **original dataset
    numbering** — the service translates them into its internal reordered
    numbering at admission and reports predictions back in this request's
    seed order.  ``arrival`` is simulated-clock seconds.  ``client``
    identifies the issuing closed-loop client (``None`` for open-loop
    traffic).  ``slo`` names the request's SLO class — it selects the
    degraded-mode action (retry / degrade / shed) from
    ``ServingConfig.slo_policies`` when a partition the request needs is
    down; unlisted classes degrade.
    """

    rid: int
    seeds: np.ndarray
    arrival: float
    client: Optional[int] = None
    slo: str = "standard"

    def __post_init__(self):
        self.seeds = np.asarray(self.seeds, dtype=np.int64)
        if len(self.seeds) == 0:
            raise ValueError(f"request {self.rid} has no seeds")

    @property
    def num_seeds(self) -> int:
        return len(self.seeds)


def trace_requests(arrival_times: Sequence[float],
                   seed_batches: Iterable[np.ndarray]) -> List[Request]:
    """Materialize requests from an explicit arrival trace.

    ``arrival_times`` must be non-decreasing; ``seed_batches`` supplies one
    seed array per arrival (extra batches are ignored, too few raise).
    """
    times = [float(t) for t in arrival_times]
    if any(b > a for a, b in zip(times[1:], times)):
        raise ValueError("arrival_times must be non-decreasing")
    batches = iter(seed_batches)
    out = []
    for rid, t in enumerate(times):
        try:
            seeds = next(batches)
        except StopIteration:
            raise ValueError(
                f"seed_batches ran out after {rid} of {len(times)} arrivals"
            ) from None
        out.append(Request(rid=rid, seeds=seeds, arrival=t))
    return out


def poisson_requests(
    candidate_ids: np.ndarray,
    num_requests: int,
    request_size: int,
    *,
    rate_rps: float,
    hot_fraction: float = 0.05,
    hot_mass: float = 0.8,
    drift_interval: int = 50,
    start: float = 0.0,
    seed: SeedLike = None,
    slo: str = "standard",
) -> List[Request]:
    """Open-loop Poisson arrivals over a drifting-popularity seed stream.

    Inter-arrival gaps are i.i.d. ``Exp(rate_rps)``; request contents are
    consecutive batches of :func:`streaming_request_stream` (so the hot set
    drifts every ``drift_interval`` *requests*).  Deterministic given
    ``seed``.
    """
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    rng = as_generator(derive_seed(seed, "arrivals"))
    gaps = rng.exponential(1.0 / rate_rps, size=num_requests)
    arrivals = start + np.cumsum(gaps)
    stream = streaming_request_stream(
        candidate_ids, num_requests, request_size,
        hot_fraction=hot_fraction, hot_mass=hot_mass,
        drift_interval=drift_interval, seed=derive_seed(seed, "seeds"),
    )
    return [Request(rid=i, seeds=seeds, arrival=float(arrivals[i]), slo=slo)
            for i, seeds in enumerate(stream)]


@dataclass
class ClosedLoopWorkload:
    """A fixed client population with one outstanding request per client.

    The service calls :meth:`initial` once to admit every client's first
    request, then :meth:`on_complete` whenever a request finishes — which
    returns that client's next request (arriving ``think_time_s`` after the
    completion) or ``None`` once ``seed_batches`` is exhausted.

    ``seed_batches`` is shared by all clients in issue order, so the
    drifting hot set advances with global progress exactly as in the
    open-loop shape.
    """

    seed_batches: Iterable[np.ndarray]
    num_clients: int
    think_time_s: float = 0.0
    start: float = 0.0
    _iter: Iterator[np.ndarray] = field(init=False, repr=False)
    _next_rid: int = field(default=0, init=False, repr=False)

    def __post_init__(self):
        if self.num_clients < 1:
            raise ValueError(
                f"num_clients must be >= 1, got {self.num_clients}"
            )
        if self.think_time_s < 0:
            raise ValueError(
                f"think_time_s must be non-negative, got {self.think_time_s}"
            )
        self._iter = iter(self.seed_batches)

    def _issue(self, client: int, arrival: float) -> Optional[Request]:
        try:
            seeds = next(self._iter)
        except StopIteration:
            return None
        req = Request(rid=self._next_rid, seeds=seeds, arrival=arrival,
                      client=client)
        self._next_rid += 1
        return req

    def initial(self) -> List[Request]:
        """Every client's first request, all arriving at ``start``."""
        out = []
        for c in range(self.num_clients):
            req = self._issue(c, self.start)
            if req is None:
                break
            out.append(req)
        return out

    def on_complete(self, request: Request, now: float) -> Optional[Request]:
        """The completing client's next request, or ``None`` when done."""
        return self._issue(request.client, now + self.think_time_s)
