"""Legacy setup shim.

Kept alongside pyproject.toml so `pip install -e . --no-build-isolation
--no-use-pep517` works on air-gapped machines that lack the `wheel` package
(PEP 660 editable installs require building a wheel; `setup.py develop` does
not).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
