"""VIP analysis under the microscope: Proposition 1 vs direct simulation.

Computes analytic vertex-inclusion probabilities for a small power-law graph
and compares them against Monte-Carlo frequencies of the actual sampling
process — the validation at the heart of the paper — then shows why degree
alone is a poor proxy for access probability.

Run:  python examples/vip_analysis.py
"""

import numpy as np

from repro.graph import power_law_community_graph
from repro.utils import Table
from repro.vip import montecarlo_inclusion_frequency, vip_for_training_set


def main():
    graph, _ = power_law_community_graph(
        2000, 10.0, num_communities=16, seed=1)
    rng = np.random.default_rng(0)
    train = rng.choice(graph.num_vertices, 200, replace=False)
    fanouts, batch = (5, 3), 32

    res = vip_for_training_set(graph, train, fanouts, batch)
    analytic = res.access
    print(f"graph: {graph}")
    print(f"analytic VIP computed for fanouts {fanouts}, batch {batch} "
          f"(O(L(M+N)) sparse propagation)\n")

    print("running 2000 Monte-Carlo trials of the real sampler...")
    mc = montecarlo_inclusion_frequency(graph, train, fanouts, batch,
                                        trials=2000, seed=2)
    corr = np.corrcoef(analytic, mc)[0, 1]
    print(f"correlation(analytic, simulated): {corr:.4f}\n")

    top = np.argsort(-analytic)[:10]
    table = Table(["vertex", "analytic VIP", "simulated freq", "degree"],
                  title="Ten most-included vertices", float_fmt="{:.4f}")
    for v in top:
        table.add_row([int(v), analytic[v], mc[v], int(graph.degrees[v])])
    print(table)

    # Degree is correlated with VIP but misses the training-set geometry.
    deg_corr = np.corrcoef(graph.degrees.astype(float), mc)[0, 1]
    print(f"\ncorrelation(degree, simulated): {deg_corr:.4f} "
          f"(vs {corr:.4f} for analytic VIP)")


if __name__ == "__main__":
    main()
