"""Scaling study: epoch time and memory vs cluster size (Figure 5 style).

Builds SALIENT++ on papers-mini for 2-16 simulated machines, comparing the
VIP-cached partitioned store against SALIENT's full replication, and prints
per-epoch times (simulated on the calibrated cluster model) plus total
feature memory.

Run:  python examples/scaling_study.py
"""

from repro import load_dataset
from repro.core import Planner, RunConfig, Salient, SalientPP
from repro.utils import Table, format_seconds


def main():
    dataset = load_dataset("papers-mini", seed=0)
    print(f"dataset: {dataset}\n")
    alpha = 0.32
    # One planner for the whole sweep: per K, the partition / VIP / reorder
    # artifacts are computed once and shared by both system variants.
    planner = Planner()

    table = Table(
        ["machines", "SALIENT++ epoch", "SALIENT epoch",
         "SALIENT++ memory", "SALIENT memory", "speedup vs K=2"],
        title=f"papers-mini scaling (alpha={alpha}, 10% locals on GPU)",
    )
    base = None
    for K in (2, 4, 8, 16):
        cfg = RunConfig(num_machines=K, replication_factor=alpha,
                        gpu_fraction=0.1)
        spp = SalientPP.build(dataset, cfg, planner=planner)
        sal = Salient.build(dataset, RunConfig(num_machines=K),
                            planner=planner)
        t_spp = spp.mean_epoch_time(epochs=1)
        t_sal = sal.mean_epoch_time(epochs=1)
        base = base or t_spp
        table.add_row([
            K,
            format_seconds(t_spp),
            format_seconds(t_sal),
            f"{spp.memory_multiple:.2f}x dataset",
            f"{sal.memory_multiple:.0f}x dataset",
            f"{base / t_spp:.2f}x",
        ])
    print(table)
    print("\nSALIENT++ matches full replication's speed at a fraction of "
          "its memory (the paper's headline claim).")


if __name__ == "__main__":
    main()
