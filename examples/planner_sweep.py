"""Staged preprocessing with the Planner: plans, sweeps, artifact reuse.

Demonstrates the system-construction API around the preprocessing DAG
(partition -> vip -> reorder -> cache-select -> store -> trainer):

1. inspect the plan for a config — stages, fingerprints, dependencies;
2. run an α-sweep (Figure 5 / 7 style) through one planner and show that
   the heavy stages are computed once and then served from the cache;
3. persist the artifacts on disk and rebuild a variant from a cold planner
   with zero preprocessing recomputation.

Run:  python examples/planner_sweep.py
"""

import tempfile

from repro import load_dataset
from repro.core import ArtifactCache, PREPROCESS_STAGES, Planner, RunConfig
from repro.utils import Table, format_seconds


def main():
    dataset = load_dataset("products-mini", seed=0)
    print(f"dataset: {dataset}\n")

    # --- 1. The plan is an inspectable DAG keyed by fingerprints. --------
    base = RunConfig(num_machines=4, replication_factor=0.16,
                     gpu_fraction=0.25)
    planner = Planner()
    print(planner.plan(dataset, base).describe())
    print()

    # --- 2. An alpha-sweep: only cache-select (and store/trainer) rerun. -
    table = Table(["alpha", "epoch time", "realized alpha"],
                  title="alpha sweep through one planner (products-mini, K=4)")
    for alpha in (0.04, 0.08, 0.16, 0.32):
        cfg = RunConfig(num_machines=4, replication_factor=alpha,
                        gpu_fraction=0.25)
        system = planner.build(dataset, cfg)
        table.add_row([f"{alpha:.2f}",
                       format_seconds(system.mean_epoch_time(epochs=1)),
                       f"{system.realized_alpha:.3f}"])
    print(table)
    stats = Table(["stage", "computed", "memory hits"],
                  title="stage executions for the 4-variant sweep")
    for stage, st in planner.stats.items():
        stats.add_row([stage, st.computed, st.memory_hits])
    print(stats)
    print("\npartition/vip/reorder ran once; each alpha only re-selected "
          "its cache.\n")

    # --- 3. On-disk artifacts: a cold process skips preprocessing. -------
    with tempfile.TemporaryDirectory() as cache_dir:
        warm_source = Planner(ArtifactCache(cache_dir))
        warm_source.build(dataset, base)          # populates the directory

        rebuilt = Planner(ArtifactCache(cache_dir))   # fresh planner: no memory
        system = rebuilt.build(dataset, base)
        recomputed = sum(rebuilt.stats[s].computed for s in PREPROCESS_STAGES)
        from_disk = sum(rebuilt.stats[s].disk_hits for s in PREPROCESS_STAGES)
        print(f"warm rebuild: {recomputed} preprocessing stages recomputed, "
              f"{from_disk} loaded from {cache_dir}")
        print(f"rebuilt system: {system.describe()}")


if __name__ == "__main__":
    main()
