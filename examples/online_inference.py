"""Online inference walkthrough: serving GNN predictions under live traffic.

Everything built so far trains; this example *serves*.  An
``InferenceService`` is stood up over the partitioned feature store (built
through the Planner, so it reuses the same partition / VIP / reorder
artifacts a training run would), and production-shaped traffic is played
against it on a simulated clock:

1. **Open loop** — Poisson arrivals with a drifting popularity hot set,
   served with the deadline batcher: per-request p50/p95/p99 latency,
   throughput, and communication, comparing the training-time static VIP
   cache against a ``vip-refresh`` dynamic cache that re-runs the paper's
   Proposition 1 against the *observed request traffic*.
2. **Batching policies** — naive fixed-size dispatch vs SLO-bounded
   deadline accumulation vs cache-affinity packing, same traffic.
3. **Closed loop** — a fixed client population measuring achievable
   throughput.

Run:  python examples/online_inference.py   (finishes in well under a minute)
"""

import time

import numpy as np

from repro.core import Planner, RunConfig, ServingConfig
from repro.graph.datasets import make_synthetic_dataset
from repro.graph.generators import streaming_request_stream
from repro.serving import ClosedLoopWorkload, poisson_requests
from repro.utils import Table

K = 4
FANOUTS = (4, 3)
REQUEST_SIZE = 8
RATE = 8_000.0
NUM_REQUESTS = 1_200


def build_dataset():
    return make_synthetic_dataset(
        "serve-demo", num_vertices=12_000, avg_degree=12.0, feature_dim=32,
        num_classes=8, num_communities=24, intra_fraction=0.95, power=2.8,
        train_frac=0.4, seed=1,
    )


def config(cache_policy="vip", batcher="deadline"):
    return RunConfig(
        num_machines=K, partitioner="random", fanouts=FANOUTS, batch_size=32,
        replication_factor=0.10, cache_policy=cache_policy,
        refresh_interval=8, cache_aging_interval=16, network_gbps=0.2, seed=0,
        serving=ServingConfig(batcher=batcher, max_batch=8, max_wait_ms=15.0,
                              max_in_flight=4),
    )


def traffic(ds, seed=11):
    return poisson_requests(
        np.arange(ds.num_vertices), NUM_REQUESTS, REQUEST_SIZE,
        rate_rps=RATE, hot_fraction=0.002, hot_mass=0.95,
        drift_interval=400, seed=seed,
    )


def summary_row(label, report):
    s = report.summary()
    return [label, s["p50_ms"], s["p95_ms"], s["p99_ms"],
            s["max_queue_wait_ms"], float(report.gather.comm_rows()),
            s["cache_hit_rate"], s["throughput_rps"]]


COLUMNS = ["variant", "p50 ms", "p95 ms", "p99 ms", "max wait ms",
           "comm rows", "hit rate", "req/s"]


def open_loop_demo(ds, planner):
    print("=== 1. open loop: static VIP vs request-VIP refresh ===")
    table = Table(COLUMNS, title="Poisson arrivals, drifting hot set",
                  float_fmt="{:.2f}")
    for pol in ("vip", "vip-refresh"):
        service = planner.build_service(ds, config(cache_policy=pol))
        report = service.run(traffic(ds))
        table.add_row(summary_row(pol, report))
        sample = report.predictions[0]
        print(f"  {pol}: request 0 -> classes {sample.tolist()}")
    print(table, "\n")


def batcher_demo(ds, planner):
    print("=== 2. micro-batching policies (static vip cache) ===")
    table = Table(COLUMNS, title="fixed-size vs deadline vs cache-affinity",
                  float_fmt="{:.2f}")
    for batcher in ("fixed-size", "deadline", "cache-affinity"):
        service = planner.build_service(ds, config(batcher=batcher))
        report = service.run(traffic(ds))
        table.add_row(summary_row(batcher, report))
    print(table, "\n")


def closed_loop_demo(ds, planner):
    print("=== 3. closed loop: 16 clients, zero think time ===")
    service = planner.build_service(ds, config())
    stream = streaming_request_stream(
        np.arange(ds.num_vertices), 400, REQUEST_SIZE,
        hot_fraction=0.002, hot_mass=0.95, drift_interval=200, seed=7,
    )
    report = service.run(ClosedLoopWorkload(stream, num_clients=16))
    print(f"  achievable throughput: {report.throughput_rps():.0f} req/s, "
          f"p99 {report.p99 * 1e3:.2f} ms, "
          f"mean batch {report.mean_batch_requests():.1f} requests\n")


def main():
    t0 = time.time()
    ds = build_dataset()
    print(f"dataset: {ds} ({time.time() - t0:.1f}s to generate)\n")
    planner = Planner()  # serving sweeps reuse all preprocessing artifacts
    open_loop_demo(ds, planner)
    batcher_demo(ds, planner)
    closed_loop_demo(ds, planner)
    stats = planner.stats
    print(f"planner: partition computed {stats['partition'].computed}x, "
          f"reorder computed {stats['reorder'].computed}x "
          f"across 6 service builds")
    print(f"done in {time.time() - t0:.1f}s")


if __name__ == "__main__":
    main()
