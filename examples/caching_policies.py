"""Compare caching policies by communication volume (Figure 2 style).

Runs the full policy zoo — degree, 1-hop halo, weighted reverse PageRank,
#paths, simulation-based VIP, analytic VIP (Proposition 1), and the
retroactive oracle — on products-mini with a 4-way METIS-like partition, and
prints the per-epoch remote-fetch volume at several replication factors.

Run:  python examples/caching_policies.py
"""

import time

from repro import load_dataset
from repro.core import RunConfig, make_partition
from repro.utils import Table, format_count
from repro.vip import (
    default_policies,
    evaluate_policies,
    geometric_mean_improvement,
    record_access_trace,
)


def main():
    dataset = load_dataset("products-mini", seed=0)
    meta = dataset.metadata["default_experiment"]
    num_parts, fanouts, batch = 4, meta["fanouts"], meta["batch_size"]
    print(f"dataset: {dataset}\npartitioning {num_parts}-way...")
    partition = make_partition(dataset, RunConfig(num_machines=num_parts))

    alphas = [0.05, 0.1, 0.2, 0.5]
    policies = {n: f() for n, f in default_policies().items() if n != "none"}

    t0 = time.time()
    trace = record_access_trace(dataset.graph, partition, dataset.train_idx,
                                fanouts, batch, epochs=2, seed=7)
    results = evaluate_policies(
        dataset.graph, partition, dataset.train_idx, fanouts, batch,
        policies, alphas, trace=trace, seed=7,
    )
    print(f"evaluated {len(policies) + 2} policies x {len(alphas)} "
          f"replication factors in {time.time() - t0:.1f}s\n")

    order = ["degree", "halo", "wpr", "numpaths", "sim", "vip", "oracle"]
    base = [r for r in results if r.policy == "none"][0].volume
    table = Table(["alpha"] + order,
                  title=f"Per-epoch remote vertex fetches (no caching: "
                        f"{format_count(base)})",
                  float_fmt="{:.0f}")
    for alpha in alphas:
        row = {r.policy: r.volume for r in results if abs(r.alpha - alpha) < 1e-12}
        table.add_row([f"{alpha:.2f}"] + [row[p] for p in order])
    print(table)

    print("\ngeometric-mean improvement over no caching (Figure 2d):")
    for p in order:
        print(f"  {p:10s} {geometric_mean_improvement(results, p):5.2f}x")


if __name__ == "__main__":
    main()
