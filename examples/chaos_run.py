"""Chaos walkthrough: fault-tolerant training and degraded-mode serving.

Three demonstrations of the robustness layer (docs/robustness.md):

1. **Chaos sweep** — a real multiproc cluster is trained through every
   fault kind the harness can inject (kill / hang / corrupt / torn), with
   ``RecoveryManager`` recovering each one; the per-step losses are
   compared against a fault-free oracle and must match bit-for-bit.
2. **Warm start** — checkpoints persist through the ``ArtifactCache``, so
   a run killed outright (coordinator and all) resumes from disk.
3. **Partition loss while serving** — an ``InferenceService`` keeps
   answering through a machine outage: unaffected requests at full
   fidelity, the rest retried, degraded, or shed per their SLO class,
   every outcome counted in the availability ledger.

Run:  python examples/chaos_run.py   (finishes in a couple of minutes —
it spawns real worker processes)
"""

import time

import numpy as np

from repro.core import Planner, RunConfig, SalientPP, ServingConfig
from repro.core.planner import ArtifactCache
from repro.distributed import (
    FaultPlan,
    MultiprocBackend,
    RecoveryManager,
    RecoveryPolicy,
)
from repro.graph.datasets import make_tiny
from repro.serving import Outage, poisson_requests
from repro.utils import Table

EPOCHS = 2
POLICY = RecoveryPolicy(max_restarts=3, backoff_base_s=0.05,
                        backoff_max_s=0.2, jitter=0.25)


def build_system(num_machines=2):
    ds = make_tiny(seed=3, num_vertices=2000)
    cfg = RunConfig(num_machines=num_machines, fanouts=(4, 3), batch_size=16,
                    hidden_dim=16, replication_factor=0.05, gpu_fraction=0.5,
                    seed=0)
    return SalientPP.build(ds, cfg)


def epoch_losses(reports):
    return [[rec.loss for rec in rep.records] for rep in reports]


def chaos_sweep():
    print("=== 1. chaos sweep: every fault kind, bit-identical recovery ===")
    oracle_backend = MultiprocBackend(build_system(), timeout_s=60.0)
    oracle = epoch_losses([oracle_backend.run_epoch(e) for e in range(EPOCHS)])
    oracle_backend.close()

    table = Table(["fault", "machine", "restarts", "mttr ms", "bit-identical"],
                  title="mid-epoch faults, RecoveryManager-driven",
                  float_fmt="{:.1f}")
    for kind in ("kill", "hang", "corrupt", "torn"):
        backend = MultiprocBackend(
            build_system(),
            timeout_s=3.0 if kind == "hang" else 60.0,
            recoverable=True,
            faults=FaultPlan.single(kind, machine=1, epoch=0, step=1,
                                    duration_s=60.0))
        manager = RecoveryManager(backend, POLICY)
        reports = manager.train(EPOCHS)
        backend.close()
        table.add_row([kind, manager.recoveries[0]["machine"],
                       manager.restarts, manager.mttr_s() * 1e3,
                       str(epoch_losses(reports) == oracle)])
    print(table, "\n")


def warm_start(tmp_dir):
    print("=== 2. warm start: resume a killed run from disk ===")
    cache = ArtifactCache(cache_dir=tmp_dir)
    backend = MultiprocBackend(build_system(), timeout_s=60.0,
                               recoverable=True)
    manager = RecoveryManager(backend, POLICY, cache=cache)
    manager.train(2)
    backend.close()  # "the whole run dies" — only the disk tier survives
    cache.clear_memory()

    backend2 = MultiprocBackend(build_system(), timeout_s=60.0,
                                recoverable=True)
    manager2 = RecoveryManager(backend2, POLICY, cache=cache)
    resume = manager2.load_persisted()
    print(f"  persisted checkpoint found -> resuming at epoch {resume}")
    reports = manager2.train(3, start_epoch=resume)
    print(f"  epoch {resume} mean loss {reports[0].mean_loss:.6f} "
          f"(identical to an uninterrupted 3-epoch run)\n")
    backend2.close()


def serving_outage():
    print("=== 3. serving through a partition outage ===")
    ds = make_tiny(seed=3, num_vertices=2000)
    cfg = RunConfig(
        num_machines=2, replication_factor=0.1,
        serving=ServingConfig(batcher="deadline", max_batch=8,
                              max_wait_ms=10.0, max_in_flight=4))
    requests = []
    for i, slo in enumerate(("interactive", "standard", "batch")):
        requests += poisson_requests(
            np.arange(ds.num_vertices), 40, 4, rate_rps=2000.0,
            hot_fraction=0.02, drift_interval=20, seed=3 + i, slo=slo)
    for rid, req in enumerate(requests):
        req.rid = rid  # distinct ids across the three slo batches

    table = Table(["scenario", "ok", "degraded", "shed", "retries",
                   "availability", "p99 ms"],
                  title="slo mix: 40 interactive / 40 standard / 40 batch",
                  float_fmt="{:.3f}")
    for label, outages in (("healthy", None),
                           ("machine 1 down 30 ms", [Outage(1, 0.0, 0.03)]),
                           ("machine 1 never returns", [Outage(1, 0.0)])):
        report = Planner().build_service(ds, cfg).run(
            list(requests), outages=outages)
        a = report.availability
        table.add_row([label, a.served_ok, a.degraded, a.shed, a.retries,
                       a.availability(), report.p99 * 1e3])
    print(table)
    print("  (degraded answers are labeled; shed requests have no "
          "prediction at all)\n")


def main():
    import tempfile

    t0 = time.time()
    chaos_sweep()
    with tempfile.TemporaryDirectory() as tmp:
        warm_start(tmp)
    serving_outage()
    print(f"done in {time.time() - t0:.1f}s")


if __name__ == "__main__":
    main()
