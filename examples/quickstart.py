"""Quickstart: distributed GNN training with VIP caching in ~20 lines.

Builds SALIENT++ on a small synthetic dataset: partitions the graph, runs
VIP analysis, reorders vertices, selects per-machine caches, trains a
GraphSAGE model across 4 simulated machines, and reports accuracy plus the
communication the cache avoided.

Run:  python examples/quickstart.py
"""

from repro import load_dataset
from repro.core import RunConfig, SalientPP
from repro.utils import Table, format_bytes


def main():
    dataset = load_dataset("tiny", seed=0)
    print(f"dataset: {dataset}")

    config = RunConfig(
        num_machines=4,
        fanouts=(5, 5),
        batch_size=16,
        hidden_dim=32,
        replication_factor=0.2,   # alpha: cache ~ 0.2 * N / K rows/machine
        cache_policy="vip",       # Proposition-1 analytic VIP ranking
        gpu_fraction=0.25,        # beta: hottest quarter of locals on GPU
        lr=0.01,
    )
    system = SalientPP.build(dataset, config)
    print(f"built: {system.describe()}")
    print(f"feature memory: {system.memory_multiple:.2f}x the dataset "
          f"(full replication would be {config.num_machines}x)")

    results = system.train(epochs=8)
    test_acc = system.evaluate("test")

    table = Table(["epoch", "loss", "simulated epoch time",
                   "remote rows fetched", "cache hits"])
    for r in results:
        table.add_row([
            r.report.epoch,
            r.loss,
            f"{1000 * r.epoch_time:.2f} ms",
            r.report.total_remote_rows(),
            r.report.total_cached_rows(),
        ])
    print()
    print(table)
    print(f"\ntest accuracy: {test_acc:.3f}")
    ledger = results[-1].report.ledger
    print(f"last-epoch feature bytes on the wire: "
          f"{format_bytes(ledger.total_feature_bytes())}")


if __name__ == "__main__":
    main()
