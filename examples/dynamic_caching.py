"""Dynamic caching walkthrough: drift-adaptive training + streaming inference.

The paper's VIP cache is selected once during preprocessing and never
changes.  This example shows the two scenarios where the dynamic cache
subsystem pays off:

1. **Drifting training set** — the active training vertices migrate across
   graph communities every few epochs; a ``vip-refresh`` cache re-runs the
   analytic VIP computation against the *current* training set at each
   refresh and swaps only the entries whose expected demand savings exceed
   the fetch cost of swapping them in.

2. **Streaming inference** — a request stream with a shifting popularity
   hot set hits the feature store directly (no training at all); an LFU
   cache with TinyLFU-style gated admission tracks the hot set online,
   while the static training-time cache serves a workload it was never
   built for.

Run:  python examples/dynamic_caching.py
"""

import time

import numpy as np

from repro.core import RunConfig, SalientPP, make_partition
from repro.distributed import DynamicCacheSpec, PartitionedFeatureStore
from repro.graph import drifting_training_sets, streaming_request_stream
from repro.graph.datasets import make_synthetic_dataset
from repro.partition import reorder_dataset
from repro.sampling import NeighborSampler
from repro.utils import Table
from repro.vip import CacheContext, VIPAnalyticPolicy, build_caches


def build_drift_dataset():
    """Strong communities, mild hubs: the regime where workload drift
    actually moves the hot set (see benchmarks/test_dynamic_cache.py)."""
    return make_synthetic_dataset(
        "drift-mini", num_vertices=24_000, avg_degree=14.0, feature_dim=32,
        num_classes=8, num_communities=32, intra_fraction=0.97, power=2.8,
        train_frac=0.4, seed=1,
    )


def drifting_training_demo(ds):
    print("=== 1. drifting training set (4 machines, hash partition) ===")
    epochs, phase_epochs = 12, 3
    base = RunConfig(num_machines=4, partitioner="random", fanouts=(4, 3),
                     batch_size=32, seed=0)
    part = make_partition(ds, base.resolve(ds))

    table = Table(["policy", "demand rows", "refresh rows", "total", "vs static"],
                  title="Total communication over 12 epochs (cache a=0.10)")
    totals = {}
    for pol in ("vip", "lfu", "vip-refresh"):
        cfg = RunConfig(num_machines=4, replication_factor=0.10, cache_policy=pol,
                        refresh_interval=12, cache_aging_interval=20,
                        partitioner="random", fanouts=(4, 3), batch_size=32, seed=0)
        system = SalientPP.build(ds, cfg, partition=part)
        phases = drifting_training_sets(
            system.reordered.dataset.train_idx,
            system.reordered.dataset.community,
            epochs // phase_epochs,
            active_fraction=0.06, window_fraction=0.06,
            background_fraction=0.0, seed=42,
        )
        demand = refresh = 0
        for e in range(epochs):
            if e % phase_epochs == 0:
                system.update_training_set(phases[e // phase_epochs])
            rep = system.train_epoch(e, dry_run=True).report
            demand += rep.total_remote_rows()
            refresh += rep.total_refresh_rows()
        totals[pol] = demand + refresh
        table.add_row([pol, demand, refresh, totals[pol],
                       f"{totals[pol] / totals['vip']:.3f}x"])
    print(table, "\n")


def streaming_inference_demo(ds):
    print("=== 2. streaming inference against the feature store ===")
    K, alpha, fanouts, batch = 4, 0.10, (4, 3), 64
    base = RunConfig(num_machines=K, partitioner="random", fanouts=fanouts,
                     batch_size=batch, seed=0)
    part = make_partition(ds, base.resolve(ds))
    # One reordered substrate; cache variants are compared on top of it.
    rd = reorder_dataset(ds, part)

    ctx = CacheContext(rd.dataset.graph, rd.partition, rd.dataset.train_idx,
                       fanouts, batch, seed=0)
    warm = build_caches(VIPAnalyticPolicy(), ctx, alpha)
    budget = len(warm[0])

    def run(store, label):
        sampler = NeighborSampler(rd.dataset.graph, fanouts, seed=7)
        stream = streaming_request_stream(
            np.arange(rd.dataset.num_vertices), num_batches=600,
            batch_size=batch, hot_fraction=0.005, hot_mass=0.9,
            drift_interval=150, seed=11,
        )
        remote = cached = 0
        for i, seeds in enumerate(stream):
            machine = i % store.num_machines  # round-robin request routing
            mfg = next(iter(sampler.batches(seeds, len(seeds), shuffle=False)))
            _, stats = store.gather(machine, mfg.n_id)
            remote += stats.comm_rows()
            cached += stats.cached_rows
        hit = cached / max(cached + remote, 1)
        print(f"  {label:28s} remote rows: {remote:7d}   cache hit rate: {hit:.3f}")
        return remote

    static_store = PartitionedFeatureStore.build(rd, caches=warm)
    run(static_store, "static vip (training-time)")
    for pol in ("lru", "lfu"):
        spec = DynamicCacheSpec(policy=pol, capacity=budget, aging_interval=30)
        store = PartitionedFeatureStore.build(rd, caches=warm, dynamic=spec)
        run(store, f"dynamic {pol}")
    print()


def main():
    t0 = time.time()
    ds = build_drift_dataset()
    print(f"dataset: {ds} ({time.time() - t0:.1f}s to generate)\n")
    drifting_training_demo(ds)
    streaming_inference_demo(ds)
    print(f"done in {time.time() - t0:.1f}s")


if __name__ == "__main__":
    main()
