"""Streaming graphs walkthrough: mutate, refresh, train, and serve.

The paper's pipeline assumes a frozen graph; this example exercises the
streaming extension that lifts that assumption:

1. **Delta-CSR overlay** — wrap a CSR graph in a
   :class:`~repro.graph.mutable.MutableGraph`, land edge-churn batches,
   and read rows through the overlay without rebuilding anything.
2. **Incremental VIP** — take a :func:`~repro.vip.incremental.snapshot_vip`
   once, then refresh it per churn window with
   :func:`~repro.vip.incremental.incremental_vip`, comparing wall time and
   verifying **bit-identity** against a full Proposition-1 sweep on the
   rebuilt (materialized) graph every window.
3. **Continual training** — push churn into a built system with
   :meth:`SalientPP.apply_graph_updates`; the per-partition VIP matrix
   follows the graph and the next epoch trains on the mutated topology.
4. **Serving under churn** — play the same mutation stream against an
   ``InferenceService`` between request windows.

Run:  python examples/streaming_vip.py   (finishes in well under a minute)
"""

import time

import numpy as np

from repro.core import RunConfig, SalientPP, ServingConfig, StreamingConfig
from repro.graph.datasets import make_synthetic_dataset
from repro.graph.generators import edge_stream
from repro.graph.mutable import EdgeBatch, MutableGraph
from repro.serving import InferenceService, poisson_requests
from repro.utils import Table
from repro.vip import incremental_vip, snapshot_vip, vip_probabilities
from repro.vip.analytic import uniform_minibatch_probability

K = 4
FANOUTS = (5, 4, 3)


def build_dataset():
    return make_synthetic_dataset(
        "stream-demo", num_vertices=20_000, avg_degree=12.0, feature_dim=32,
        num_classes=8, num_communities=16, intra_fraction=0.95, power=2.6,
        train_frac=0.3, seed=1,
    )


def overlay_basics(ds):
    print("== Delta-CSR overlay ==")
    mg = MutableGraph(ds.graph, undirected=True, compact_cutoff=None)
    before = int(mg.degrees[0])
    mg.add_edges([0, 0], [100, 200])
    print(f"vertex 0 degree: {before} -> {int(mg.degrees[0])} "
          f"(version {mg.version}, {mg.overlay_entries} overlay entries)")
    print(f"dirty frontier since v0: {mg.dirty_frontier(0)}")
    mg.compact()
    print(f"compacted: version {mg.version}, "
          f"overlay entries {mg.overlay_entries}")
    return mg


def incremental_refresh(ds):
    print("\n== Incremental VIP under churn ==")
    n = ds.num_vertices
    big = int(np.argmax(np.bincount(ds.community)))
    train = np.intersect1d(ds.train_idx, np.flatnonzero(ds.community == big))
    p0 = uniform_minibatch_probability(n, train, 256)
    remote = np.flatnonzero(ds.community != big)

    mg = MutableGraph(ds.graph, undirected=True, compact_cutoff=None)
    snap = snapshot_vip(mg, p0, FANOUTS)
    table = Table(["window", "inc ms", "full ms", "speedup", "rows", "exact"],
                  title="incremental_vip vs rebuild + vip_probabilities",
                  float_fmt="{:.1f}")
    for w, batch in enumerate(edge_stream(mg, num_batches=4, batch_edges=60,
                                          pool=remote, delete_fraction=0.3,
                                          seed=7)):
        mg.apply(batch)
        t0 = time.perf_counter()
        snap = incremental_vip(mg, snap, churn_cutoff=1.0)
        inc = time.perf_counter() - t0
        mg._csr, mg._csr_version = None, -1  # charge the rebuild honestly
        t0 = time.perf_counter()
        ref = vip_probabilities(mg.materialize(), p0, FANOUTS)
        full = time.perf_counter() - t0
        table.add_row([w, inc * 1e3, full * 1e3, f"{full / inc:.1f}x",
                       snap.stats.rows_recomputed,
                       bool(np.array_equal(snap.result.total, ref.total))])
    print(table.render())


def continual_training(ds):
    print("\n== Continual training across churn ==")
    cfg = RunConfig(num_machines=K, replication_factor=0.1,
                    cache_policy="vip", batch_size=32, fanouts=FANOUTS,
                    seed=0)
    system = SalientPP.build(ds, cfg)
    rng = np.random.default_rng(7)
    n = ds.num_vertices
    for epoch in range(2):
        result = system.train_epoch(epoch, dry_run=True)
        print(f"epoch {epoch}: comm rows "
              f"{result.report.total_comm_rows()}")
        rec = system.apply_graph_updates(EdgeBatch(
            add_src=rng.integers(0, n, 300),
            add_dst=rng.integers(0, n, 300)))
        print(f"  churn -> version {rec.version}: VIP matrix refreshed "
              "(bit-identical to a from-scratch recompute)")


def serving_under_churn(ds):
    print("\n== Serving with mutations between windows ==")
    cfg = RunConfig(
        num_machines=K, partitioner="random", fanouts=FANOUTS, batch_size=32,
        replication_factor=0.1, cache_policy="vip-refresh",
        refresh_interval=8, network_gbps=0.5, seed=0,
        serving=ServingConfig(batcher="deadline", max_batch=8,
                              max_wait_ms=15.0, max_in_flight=4),
        streaming=StreamingConfig(refresh_on_mutation=True),
    )
    svc = InferenceService.from_system(SalientPP.build(ds, cfg))
    rng = np.random.default_rng(3)
    n = ds.num_vertices
    workload = poisson_requests(np.arange(n), 400, 8, rate_rps=2_000.0,
                                hot_fraction=0.01, hot_mass=0.9, seed=11)
    muts = [(0.03 + 0.05 * i, EdgeBatch(add_src=rng.integers(0, n, 500),
                                        add_dst=rng.integers(0, n, 500)))
            for i in range(3)]
    report = svc.run(workload, mutations=muts)
    summary = report.summary()
    print(f"served {len(report.records)} requests across "
          f"{svc.mutations_applied} mutation batches: "
          f"p50 {summary['p50_ms']:.2f} ms, p99 {summary['p99_ms']:.2f} ms, "
          f"comm rows {report.gather.comm_rows()}")


def main():
    ds = build_dataset()
    overlay_basics(ds)
    incremental_refresh(ds)
    continual_training(ds)
    serving_under_churn(ds)


if __name__ == "__main__":
    main()
