"""Slow-network study: analytic vs simulation VIP caching (Figure 9 style).

On bandwidth-constrained clusters, larger caches are needed before
communication stops bottlenecking training, and the quality gap between the
analytic VIP ranking and the 2-epoch empirical estimate widens with the
replication factor.

Run:  python examples/slow_network.py
"""

from repro import load_dataset
from repro.core import RunConfig, SalientPP, make_partition
from repro.utils import Table


def main():
    dataset = load_dataset("papers-mini", seed=0)
    K = 8
    partition = make_partition(dataset, RunConfig(num_machines=K).resolve(dataset))
    print(f"dataset: {dataset}, {K} machines\n")

    for gbps in (4.0, 25.0):
        table = Table(
            ["alpha", "VIP analytic (ms)", "VIP simulation (ms)", "gap"],
            title=f"{gbps:g} Gbps network",
        )
        for alpha in (0.08, 0.16, 0.32, 0.48):
            times = {}
            for policy in ("vip", "sim"):
                cfg = RunConfig(num_machines=K, replication_factor=alpha,
                                cache_policy=policy, network_gbps=gbps,
                                gpu_fraction=0.5)
                system = SalientPP.build(dataset, cfg, partition=partition)
                times[policy] = system.mean_epoch_time(epochs=1)
            table.add_row([f"{alpha:.2f}",
                           1000 * times["vip"],
                           1000 * times["sim"],
                           f"{times['sim'] / times['vip']:.2f}x"])
        print(table)
        print()


if __name__ == "__main__":
    main()
