"""Functional pipelined training: coalesced in-flight fetches (§4.3).

Runs the same workload under all three execution engines:

* ``bsp``        — the paper's lock-step loop (one batch in flight);
* ``pipelined``  — depth-P in-flight minibatches per machine whose fetch
                   plans are coalesced, so a remote row needed by several
                   in-flight batches crosses the wire exactly once;
* ``async``      — bounded-staleness: replicas apply local gradients
                   immediately and re-converge every ``staleness+1`` steps.

``bsp`` and ``pipelined`` train *identically* (bit-equal losses) — the
pipeline changes where bytes travel, never what the model computes — while
the coalesced fetches cut real communication and the emitted event schedule
simulates faster.  ``async`` trades gradient freshness for fewer barriers.

Run:  python examples/pipelined_training.py
"""

from repro.core import RunConfig, SalientPP
from repro.graph.datasets import make_synthetic_dataset
from repro.utils import Table, format_bytes

K = 4
DEPTH = 8
EPOCHS = 4


def build(dataset, engine, **overrides):
    config = RunConfig(
        num_machines=K,
        fanouts=(5, 4),
        batch_size=32,
        hidden_dim=32,
        replication_factor=0.1,
        partitioner="random",   # hash layout: remote-heavy, comm-dominated
        lr=0.01,
        engine=engine,
        pipeline_depth=DEPTH,
        **overrides,
    )
    return SalientPP.build(dataset, config)


def main():
    dataset = make_synthetic_dataset(
        "pipeline-demo", num_vertices=12_000, avg_degree=10.0,
        feature_dim=32, num_classes=8, num_communities=16,
        intra_fraction=0.9, power=2.5, train_frac=0.4, seed=1,
    )
    print(f"dataset: {dataset}")

    systems = {
        "bsp": build(dataset, "bsp"),
        f"pipelined (depth {DEPTH})": build(dataset, "pipelined"),
        "async (staleness 3)": build(dataset, "async", staleness=3),
    }

    table = Table(["engine", "final loss", "remote rows", "coalesced rows",
                   "feature bytes", "epoch time"])
    baseline = None
    for name, system in systems.items():
        results = system.train(EPOCHS)
        last = results[-1]
        remote = sum(r.report.total_remote_rows() for r in results)
        coalesced = sum(r.report.total_coalesced_rows() for r in results)
        nbytes = sum(r.report.ledger.total_feature_bytes() for r in results)
        epoch_ms = 1000 * sum(r.epoch_time for r in results) / EPOCHS
        if baseline is None:
            baseline = (last.loss, nbytes, epoch_ms)
        table.add_row([
            name, f"{last.loss:.6f}", remote, coalesced,
            format_bytes(nbytes), f"{epoch_ms:.2f} ms",
        ])
    print()
    print(table)

    pipe_name = f"pipelined (depth {DEPTH})"
    pipe_loss = systems[pipe_name].train_epoch(EPOCHS).report.mean_loss
    print(f"\nbsp and pipelined losses are bit-identical; depth-{DEPTH} "
          f"coalescing removed duplicate remote fetches across in-flight "
          f"batches (epoch {EPOCHS} loss continues at {pipe_loss:.6f}).")
    print("async thins the allreduce barriers instead: same data volumes, "
          "fewer synchronization points, slightly different (stale) "
          "gradients.")


if __name__ == "__main__":
    main()
